// Package wal implements the transaction log: a separate append-only file
// of physiological redo/undo records with CRC-protected framing, plus the
// crash-recovery scan (redo committed work, undo losers).
//
// Each database consists of a main database file and a separate transaction
// log file (§1); the log is an ordinary OS file.
package wal

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"anywheredb/internal/faultinject"
	"anywheredb/internal/store"
	"anywheredb/internal/telemetry"
)

// RecType enumerates log record kinds.
type RecType uint8

const (
	RecBegin RecType = iota + 1
	RecCommit
	RecRollback
	RecInsert
	RecDelete
	RecUpdate
	RecCheckpoint
	// RecPageLink records heap-chain growth: Page is the old tail, After
	// carries the 8-byte id of the page linked after it. Chain linkage is
	// physical structure shared by every transaction that later inserts
	// into the new page, so recovery redoes these records unconditionally
	// (even for losers) and never undoes them — an abandoned empty page
	// is harmless, an unreachable committed row is not.
	RecPageLink
	// RecPageImage carries a full page image in After. The buffer pool logs
	// one (and flushes the log) immediately before every in-place data-page
	// write, so a torn or partial page write can always be repaired from the
	// log: recovery restores the newest image of each page before applying
	// redo/undo. This is the double-write technique routed through the log —
	// without it, a torn write destroys rows whose log records were already
	// truncated by an earlier checkpoint, and no amount of replay can bring
	// them back.
	RecPageImage
	// RecColSegDrop invalidates a table's columnar segments: Table is the
	// owner. It is logged before the data record of any update/delete that
	// touches a columnar table, and recovery honors it unconditionally —
	// even for losers — because dropping a valid acceleration structure is
	// harmless while scanning a stale one is not. The row heap stays
	// authoritative either way.
	RecColSegDrop
)

var recNames = map[RecType]string{
	RecBegin: "begin", RecCommit: "commit", RecRollback: "rollback",
	RecInsert: "insert", RecDelete: "delete", RecUpdate: "update",
	RecCheckpoint: "checkpoint", RecPageLink: "pagelink",
	RecPageImage: "pageimage", RecColSegDrop: "colsegdrop",
}

func (t RecType) String() string {
	if s, ok := recNames[t]; ok {
		return s
	}
	return fmt.Sprintf("rectype(%d)", uint8(t))
}

// Record is one physiological log record. Insert carries the new row image
// in After; Delete carries the old image in Before; Update carries both.
type Record struct {
	Type   RecType
	Txn    uint64
	Table  uint64
	Page   store.PageID
	Slot   uint32
	Before []byte
	After  []byte
}

// ErrClosed is returned by flush paths once CloseNoFlush has run. Before
// this sentinel existed, a flush racing Crash/Close could fall into the
// memory-backed write path (l.f == nil looks exactly like mem mode), report
// success, and acknowledge a commit whose bytes never reached disk.
var ErrClosed = fmt.Errorf("wal: log is closed")

// ErrEpoch is returned by ReadChunk when the caller's (logID, epoch)
// no longer names this log: the log was truncated (epoch bumped) or belongs
// to a different Open (logID mismatch). A log-shipping consumer that sees
// it must renegotiate its position — resuming at a byte offset from the old
// epoch would silently re-read or skip records, since Truncate resets LSNs
// to zero.
var ErrEpoch = fmt.Errorf("wal: log position is from a different epoch")

// LSN is a log sequence number: a byte offset in the log. Append returns a
// record's *end* LSN — the offset one past its frame — so the record is
// durable exactly when FlushedLSN() >= that value, and FlushTo(lsn) is the
// wait for it.
type LSN = uint64

// Options configures a log beyond its path.
type Options struct {
	// CommitFlushDelay is the group-commit gather window: a flush leader
	// sleeps this long before sealing the buffer, letting more committers
	// append their records into the batch. 0 flushes immediately (the
	// lowest-latency setting; batching then arises only from committers
	// that pile up behind an in-flight fsync).
	CommitFlushDelay time.Duration
	// SerialFlush disables the leader/follower protocol: every FlushTo
	// performs its own write+sync with the log mutex held, which is the
	// pre-group-commit behaviour. Kept as the measured baseline for
	// experiment E20; not intended for production use.
	SerialFlush bool
}

// flushGroup is one in-flight group commit. The leader creates it, seals
// the buffer into it, performs the write+sync, publishes err, and closes
// done. Followers whose commit LSN the group covers wait on done and share
// err — on failure, *every* transaction in the group sees the error.
type flushGroup struct {
	done chan struct{}
	err  error // written before done is closed

	// Guarded by Log.mu until done is closed:
	sealed  bool   // buffer swap has happened; end is final
	end     uint64 // durable tail if the flush succeeds
	members int    // committers waiting on this group (leader included)
}

// Log is an append-only transaction log. It is safe for concurrent use.
//
// Durability is group commit with a sealed-buffer swap: one leader writes
// and syncs the sealed buffer for the whole batch while followers block on
// the group's done channel, and concurrent Appends land in the next buffer
// instead of queueing behind the in-flight fsync.
type Log struct {
	mu     sync.Mutex
	f      *os.File // nil when memory-backed
	mem    []byte
	memMu  sync.Mutex // guards mem (written outside mu by the flush leader)
	memLog bool       // created memory-backed (empty path); f is nil by design
	closed bool       // CloseNoFlush ran: every later flush fails with ErrClosed
	opts   Options
	tail   uint64 // durable end offset (advanced only after a synced flush)
	end    uint64 // next append offset: tail + len(sealed) + len(buffer)
	buffer []byte // active (unsealed) pending bytes; appends land here
	sealed []byte // buffer owned by the in-flight flush leader (nil if none)

	// Log identity for the shipping handshake: logID is a random value per
	// Open (a restarted primary is a different log even at the same path);
	// epoch counts truncations. An (epoch, LSN) pair names a byte position
	// unambiguously for the lifetime of one logID. Guarded by mu; durTail
	// mirrors tail so ReadChunk can bound lock-free reads.
	logID   uint64
	epoch   uint64
	durTail atomic.Uint64

	// tailCh is closed and replaced whenever the durable tail advances, the
	// log truncates, or the log closes — the shipping loop's wakeup.
	tailCh chan struct{}

	// commitHook, when set, is called by the group-commit flush leader after
	// each successful non-empty flush, outside l.mu, before the group's
	// waiters are released. Synchronous replication rides it: the hook
	// blocks until a replica acknowledges the group's end LSN, so every
	// committer in the group observes the replica ack before its Commit
	// returns.
	commitHook atomic.Pointer[func(epoch uint64, end LSN)]

	// truncBarrier, when set, is called by Truncate before the reset,
	// outside l.mu: it gives log shippers a bounded window to drain the old
	// epoch's bytes (they read via ReadChunk, which never needs this
	// goroutine's locks) so caught-up replicas cross the epoch without a
	// full resync.
	truncBarrier atomic.Pointer[func(epoch uint64, end LSN)]

	inflight *flushGroup // the in-flight group commit (nil if none)

	// Fault handling, set once before concurrent use (SetInjector).
	inj   faultinject.Injector
	pol   faultinject.RetryPolicy
	stats *faultinject.Stats

	records     atomic.Uint64 // records appended
	checkpoints atomic.Uint64 // checkpoint records appended
	flushes     atomic.Uint64 // non-empty flushes (one fsync each)
	truncates   atomic.Uint64
	bytes       atomic.Uint64 // payload+frame bytes appended

	groupCommits atomic.Uint64 // flushes that retired more than one waiter
	flushWaiters atomic.Uint64 // FlushTo calls that blocked as followers
	// commitsPerFlush observes the number of waiters each non-empty flush
	// retired; bound at AttachTelemetry time (observations before that are
	// dropped, which only affects pre-registry startup flushes).
	commitsPerFlush atomic.Pointer[telemetry.Histogram]

	// flushWaitObs, when set, is called once per FlushTo call that blocked
	// for durability — a follower's group wait or the leader's own
	// write+fsync — with the blocked wall-clock microseconds. The fast path
	// (tail already covers lsn) reports nothing. Feeds the flight
	// recorder's "wal.flush" wait event.
	flushWaitObs atomic.Pointer[func(us int64)]
}

// SetFlushWaitObserver installs (or replaces) the durability-wait
// observer. A nil f uninstalls.
func (l *Log) SetFlushWaitObserver(f func(us int64)) {
	if f == nil {
		l.flushWaitObs.Store(nil)
		return
	}
	l.flushWaitObs.Store(&f)
}

// SetInjector installs fault interception and transient-retry handling for
// the group-commit flush path. Must be called before the log is used
// concurrently. stats may be nil.
func (l *Log) SetInjector(inj faultinject.Injector, pol faultinject.RetryPolicy, stats *faultinject.Stats) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inj = inj
	l.pol = pol
	l.stats = stats
}

// AttachTelemetry publishes the log's counters into reg under "wal.".
func (l *Log) AttachTelemetry(reg *telemetry.Registry) {
	reg.GaugeFunc("wal.records", func() int64 { return int64(l.records.Load()) })
	reg.GaugeFunc("wal.checkpoints", func() int64 { return int64(l.checkpoints.Load()) })
	reg.GaugeFunc("wal.flushes", func() int64 { return int64(l.flushes.Load()) })
	reg.GaugeFunc("wal.truncates", func() int64 { return int64(l.truncates.Load()) })
	reg.GaugeFunc("wal.bytes_appended", func() int64 { return int64(l.bytes.Load()) })
	reg.GaugeFunc("wal.group_commits", func() int64 { return int64(l.groupCommits.Load()) })
	reg.GaugeFunc("wal.flush_waiters", func() int64 { return int64(l.flushWaiters.Load()) })
	l.commitsPerFlush.Store(reg.Histogram("wal.commits_per_flush"))
}

// Open opens (or creates) the log file at path. An empty path yields a
// memory-backed log for tests.
func Open(path string) (*Log, error) { return OpenOptions(path, Options{}) }

// OpenOptions opens the log with explicit options.
func OpenOptions(path string, opts Options) (*Log, error) {
	l := &Log{opts: opts, logID: randomID()}
	if path == "" {
		l.memLog = true
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	// Rewind the append position to the end of the valid record prefix:
	// a crash can leave a torn frame at the tail, and appending after it
	// would strand the new records behind garbage Scan refuses to cross.
	// Damage that is provably mid-log — a complete-but-corrupt frame with
	// intact records after it — is not a crash remnant and fails the open.
	data := make([]byte, info.Size())
	if _, err := f.ReadAt(data, 0); err != nil && info.Size() > 0 {
		f.Close()
		return nil, fmt.Errorf("wal: open scan: %w", err)
	}
	prefix, err := validPrefix(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	l.tail = prefix
	l.end = l.tail
	l.durTail.Store(l.tail)
	return l, nil
}

// randomID draws the per-Open log identity.
func randomID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("wal: random log id: %v", err))
	}
	// Never zero: consumers use logID 0 as "no position yet".
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// validPrefix walks frames from the start and returns the byte offset just
// past the last intact record. An incomplete final frame, or a damaged one
// with nothing readable after it, is the unflushed remnant of a crash and
// terminates the walk silently. A damaged frame followed by an intact
// record is mid-log corruption — committed records live past the damage and
// silently dropping them would un-commit acknowledged work — so that case
// is a loud ErrCorrupt.
func validPrefix(data []byte) (uint64, error) {
	off := uint64(0)
	for off+8 <= uint64(len(data)) {
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		end := off + 8 + uint64(n)
		if end > uint64(len(data)) {
			return off, nil // torn tail: the frame never finished landing
		}
		payload := data[off+8 : end]
		ok := crc32.ChecksumIEEE(payload) == sum
		if ok {
			if _, err := decode(payload); err != nil {
				ok = false
			}
		}
		if !ok {
			if frameIntactAt(data, end) {
				return off, faultinject.Corrupt(fmt.Errorf(
					"wal: corrupt record at offset %d with intact records after it (%d trailing bytes)",
					off, uint64(len(data))-end))
			}
			return off, nil // corrupt tail: last flush died mid-write
		}
		off = end
	}
	return off, nil
}

// frameIntactAt reports whether a complete, CRC-valid, decodable frame
// starts at off. validPrefix uses it to tell mid-log corruption (real
// records continue after the damage) from a torn tail.
func frameIntactAt(data []byte, off uint64) bool {
	if off+8 > uint64(len(data)) {
		return false
	}
	n := binary.LittleEndian.Uint32(data[off:])
	sum := binary.LittleEndian.Uint32(data[off+4:])
	end := off + 8 + uint64(n)
	if end > uint64(len(data)) {
		return false
	}
	payload := data[off+8 : end]
	if crc32.ChecksumIEEE(payload) != sum {
		return false
	}
	_, err := decode(payload)
	return err == nil
}

func encode(r *Record) []byte {
	var b []byte
	b = append(b, byte(r.Type))
	b = binary.AppendUvarint(b, r.Txn)
	b = binary.AppendUvarint(b, r.Table)
	b = binary.AppendUvarint(b, uint64(r.Page))
	b = binary.AppendUvarint(b, uint64(r.Slot))
	b = binary.AppendUvarint(b, uint64(len(r.Before)))
	b = append(b, r.Before...)
	b = binary.AppendUvarint(b, uint64(len(r.After)))
	b = append(b, r.After...)
	return b
}

func decode(b []byte) (*Record, error) {
	bad := fmt.Errorf("wal: corrupt record")
	if len(b) < 1 {
		return nil, bad
	}
	r := &Record{Type: RecType(b[0])}
	b = b[1:]
	uv := func() uint64 {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			b = nil
			return 0
		}
		b = b[n:]
		return v
	}
	r.Txn = uv()
	r.Table = uv()
	r.Page = store.PageID(uv())
	r.Slot = uint32(uv())
	bn := uv()
	if b == nil || uint64(len(b)) < bn {
		return nil, bad
	}
	r.Before = append([]byte(nil), b[:bn]...)
	b = b[bn:]
	an := uv()
	if b == nil || uint64(len(b)) < an {
		return nil, bad
	}
	r.After = append([]byte(nil), b[:an]...)
	return r, nil
}

// Append adds a record to the log buffer and returns its end-LSN: the
// record is durable exactly when the durable tail (FlushedLSN) reaches the
// returned value, so a committer passes it straight to FlushTo.
func (l *Log) Append(r *Record) LSN {
	payload := encode(r)
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	l.buffer = append(l.buffer, frame...)
	l.end += uint64(len(frame))
	lsn := l.end
	l.records.Add(1)
	l.bytes.Add(uint64(len(frame)))
	if r.Type == RecCheckpoint {
		l.checkpoints.Add(1)
	}
	return lsn
}

// Flush forces every record appended so far to stable storage (group
// commit: one flush covers every record appended since the last).
func (l *Log) Flush() error {
	l.mu.Lock()
	end := l.end
	l.mu.Unlock()
	return l.FlushTo(end)
}

// FlushTo blocks until the durable tail covers lsn (an end-LSN returned by
// Append), flushing if needed. One leader performs the write+sync for the
// whole batch while followers wait on the group; appends made during the
// in-flight fsync land in the next buffer (sealed-buffer swap) and do not
// block.
//
// Failure semantics: when a group's flush fails, every transaction waiting
// on that group gets the error, and the sealed bytes return to the pending
// buffer — the records are not durable, the tail has not advanced, and a
// later flush (e.g. of the rollback records failed committers append) may
// still land them, exactly as the serial path behaved. Transient flush
// faults are retried with bounded exponential backoff; a crashing flush
// may land a torn prefix, which the recovery Scan drops at the first
// incomplete frame.
func (l *Log) FlushTo(lsn LSN) error {
	// blocked marks that this call waited for durability (follower wait or
	// leader write+fsync); the deferred observer reports the blocked time
	// once per call. The fast path below never sets it.
	var blockStart time.Time
	blocked := false
	defer func() {
		if blocked {
			if f := l.flushWaitObs.Load(); f != nil {
				(*f)(time.Since(blockStart).Microseconds())
			}
		}
	}()
	l.mu.Lock()
	if lsn > l.end {
		lsn = l.end
	}
	if l.opts.SerialFlush {
		defer l.mu.Unlock()
		if l.closed {
			return ErrClosed
		}
		if len(l.buffer) > 0 {
			blockStart, blocked = time.Now(), true
		}
		return l.flushSerialLocked()
	}
	for {
		if l.tail >= lsn {
			l.mu.Unlock()
			return nil
		}
		// Checked after the tail: records that were durable before the close
		// still report success; anything needing a new flush fails.
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		g := l.inflight
		if g == nil {
			break // become the leader
		}
		if !blocked {
			blockStart, blocked = time.Now(), true
		}
		if !g.sealed || g.end >= lsn {
			// Follower: an unsealed group will seal everything appended so
			// far (including our record); a sealed group covers us iff its
			// end does. Either way this group's flush decides our fate.
			g.members++
			l.flushWaiters.Add(1)
			l.mu.Unlock()
			<-g.done
			return g.err
		}
		// The in-flight flush was sealed before our record; wait for it to
		// retire, then re-evaluate (its successor will cover us).
		l.mu.Unlock()
		<-g.done
		l.mu.Lock()
	}

	// Leader (l.mu held): publish the group, optionally linger to gather
	// more committers, then seal the buffer and flush it outside the mutex.
	g := &flushGroup{done: make(chan struct{}), members: 1}
	l.inflight = g
	if d := l.opts.CommitFlushDelay; d > 0 {
		l.mu.Unlock()
		time.Sleep(d)
		l.mu.Lock()
	}
	sealed := l.buffer
	l.buffer = nil
	base := l.tail
	l.sealed = sealed
	g.sealed = true
	g.end = base + uint64(len(sealed))
	l.mu.Unlock()

	var err error
	if len(sealed) > 0 {
		if !blocked {
			blockStart, blocked = time.Now(), true
		}
		err = faultinject.Retry(l.pol, l.stats, func() error {
			return l.flushOnce(base, sealed)
		})
	}

	l.mu.Lock()
	hookEpoch, callHook := uint64(0), false
	if err == nil {
		l.tail = g.end
		l.durTail.Store(g.end)
		if len(sealed) > 0 {
			l.flushes.Add(1)
			if g.members > 1 {
				l.groupCommits.Add(1)
			}
			if h := l.commitsPerFlush.Load(); h != nil {
				h.Observe(int64(g.members))
			}
			l.tailBroadcastLocked()
			hookEpoch, callHook = l.epoch, true
		}
	} else {
		// The group failed: its records stay pending ahead of anything
		// appended meanwhile, so the log's byte order (and every assigned
		// LSN) is preserved for a later flush attempt.
		l.buffer = append(sealed, l.buffer...)
	}
	l.sealed = nil
	l.mu.Unlock()

	// Synchronous-replication ack rides the leader: the group stays
	// in-flight (followers blocked on done, late committers queue behind
	// it) until the hook returns. The hook bounds its own wait, so a dead
	// replica degrades the group to an async ack instead of wedging it.
	if callHook {
		if h := l.commitHook.Load(); h != nil {
			(*h)(hookEpoch, g.end)
		}
	}

	l.mu.Lock()
	g.err = err
	l.inflight = nil
	close(g.done)
	l.mu.Unlock()
	return err
}

// tailBroadcastLocked wakes every TailChanged waiter. Called with l.mu held
// whenever the durable tail moves, the log truncates, or the log closes.
func (l *Log) tailBroadcastLocked() {
	if l.tailCh != nil {
		close(l.tailCh)
		l.tailCh = nil
	}
}

// TailChanged returns a channel that is closed the next time the durable
// tail advances, the log truncates, or the log closes. The shipping loop
// waits on it when it has drained the durable log, then re-reads Position.
func (l *Log) TailChanged() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	if l.tailCh == nil {
		l.tailCh = make(chan struct{})
	}
	return l.tailCh
}

// SetCommitHook installs (or, with nil, removes) the synchronous-
// replication commit hook; see the field comment.
func (l *Log) SetCommitHook(f func(epoch uint64, end LSN)) {
	if f == nil {
		l.commitHook.Store(nil)
		return
	}
	l.commitHook.Store(&f)
}

// SetTruncateBarrier installs (or, with nil, removes) the pre-truncate
// drain barrier; see the field comment.
func (l *Log) SetTruncateBarrier(f func(epoch uint64, end LSN)) {
	if f == nil {
		l.truncBarrier.Store(nil)
		return
	}
	l.truncBarrier.Store(&f)
}

// flushSerialLocked is the pre-group-commit flush: write+sync the whole
// pending buffer with l.mu held (Options.SerialFlush, the E20 baseline).
func (l *Log) flushSerialLocked() error {
	if len(l.buffer) == 0 {
		return nil
	}
	base, out := l.tail, l.buffer
	if err := faultinject.Retry(l.pol, l.stats, func() error {
		return l.flushOnce(base, out)
	}); err != nil {
		return err
	}
	l.tail += uint64(len(l.buffer))
	l.durTail.Store(l.tail)
	l.buffer = l.buffer[:0]
	l.flushes.Add(1)
	if h := l.commitsPerFlush.Load(); h != nil {
		h.Observe(1)
	}
	l.tailBroadcastLocked()
	return nil
}

// flushOnce attempts one write+sync of b at offset base, consulting the
// injector first. On a torn flush the surviving prefix is written before
// the error is surfaced; the tail does not advance, so the caller's view
// is "commit failed" while the medium holds an incomplete frame — exactly
// the state a real power loss leaves behind.
func (l *Log) flushOnce(base uint64, b []byte) error {
	out := b
	if l.inj != nil {
		repl, ferr := l.inj.Fault(faultinject.OpWALFlush, base, b)
		if ferr != nil {
			if repl != nil {
				l.writeRaw(base, repl)
			}
			return ferr
		}
		if repl != nil {
			out = repl // silent corruption: the medium gets altered bytes
		}
	}
	if err := l.writeRaw(base, out); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// writeRaw lands bytes at offset base and syncs. It is called by the flush
// leader without l.mu held; the write target [base, base+len(b)) is always
// at or past the durable tail, so it never overlaps the range Scan reads.
func (l *Log) writeRaw(base uint64, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	if l.f != nil {
		if _, err := l.f.WriteAt(b, int64(base)); err != nil {
			return fmt.Errorf("wal: flush: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		return nil
	}
	if !l.memLog {
		// File-backed log whose file is gone: the log was closed under us.
		// Falling through to the memory buffer would fake durability.
		return ErrClosed
	}
	l.memMu.Lock()
	if need := int(base) + len(b); need > len(l.mem) {
		l.mem = append(l.mem, make([]byte, need-len(l.mem))...)
	}
	copy(l.mem[base:], b)
	l.memMu.Unlock()
	return nil
}

// FlushedLSN reports the LSN up to which the log is durable. It advances
// only when a sealed buffer has been written and synced, so it never
// covers a record still sitting in an unsealed (or in-flight) buffer.
func (l *Log) FlushedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// PendingLSN reports the end-LSN of the last appended record (the durable
// tail plus everything still buffered or in flight).
func (l *Log) PendingLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Position reports the log's identity and durable tail as one consistent
// triple — the primary's side of the shipping handshake.
func (l *Log) Position() (logID, epoch uint64, durable LSN) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.logID, l.epoch, l.tail
}

// AdoptIdentity overwrites the log's (logID, epoch). A replica mirrors its
// primary's identity so that, after mirroring a truncate or resyncing from
// a snapshot, its persisted position names the same bytes the primary's log
// holds.
func (l *Log) AdoptIdentity(logID, epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.logID = logID
	l.epoch = epoch
}

// drainLocked waits until no flush is in flight. Called with l.mu held;
// reacquires it before returning. Truncate and CloseNoFlush use it so the
// file is never truncated or closed under an in-flight leader's WriteAt.
func (l *Log) drainLocked() {
	for l.inflight != nil {
		g := l.inflight
		l.mu.Unlock()
		<-g.done
		l.mu.Lock()
	}
}

// scanChunkSize is the read-window size for ScanFrom. A variable, not a
// constant, so the allocation-bound regression test can shrink it and prove
// the scan never materializes more than one window.
var scanChunkSize = 256 << 10

// Scan iterates over every durable record in LSN order. A truncated or
// corrupt tail terminates the scan silently (it is the unflushed remnant of
// a crash); a damaged frame with durable records after it is mid-log
// corruption and fails with an error wrapping faultinject.ErrCorrupt.
func (l *Log) Scan(fn func(lsn LSN, r *Record) error) error {
	return l.ScanFrom(0, fn)
}

// ScanFrom iterates over the durable records at and past LSN from (which
// must be a frame boundary: zero, or an end-LSN from Append). It reads the
// log in bounded windows rather than materializing it — peak memory is one
// window (scanChunkSize, or one frame if larger) regardless of log size —
// and holds no log mutex across reads: the durable range [0, tail) is
// never rewritten, so the walk cannot race the flush leader. The replica
// apply path tails the log with it; recovery's Analyze is ScanFrom(0).
func (l *Log) ScanFrom(from LSN, fn func(lsn LSN, r *Record) error) error {
	l.mu.Lock()
	tail := l.tail
	f := l.f
	epoch := l.epoch
	l.mu.Unlock()
	if from >= tail {
		return nil
	}

	// read fills dst from absolute log offset at; offsets below tail are
	// stable unless the log is truncated under us, which the epoch check
	// turns into ErrEpoch rather than a misread.
	read := func(dst []byte, at uint64) error {
		var err error
		if f != nil {
			_, err = f.ReadAt(dst, int64(at))
		} else {
			l.memMu.Lock()
			if at+uint64(len(dst)) <= uint64(len(l.mem)) {
				copy(dst, l.mem[at:])
			} else {
				err = fmt.Errorf("wal: scan read past memory log end")
			}
			l.memMu.Unlock()
		}
		if err != nil {
			l.mu.Lock()
			changed := l.epoch != epoch
			l.mu.Unlock()
			if changed {
				return ErrEpoch
			}
			return fmt.Errorf("wal: scan read: %w", err)
		}
		return nil
	}

	buf := make([]byte, scanChunkSize)
	winStart, winLen := from, uint64(0) // buf[:winLen] mirrors log[winStart:winStart+winLen]
	refill := func(at, need uint64) error {
		if need > uint64(len(buf)) {
			buf = make([]byte, need) // one oversized frame
		}
		n := tail - at
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		if err := read(buf[:n], at); err != nil {
			return err
		}
		winStart, winLen = at, n
		return nil
	}

	off := from
	for off+8 <= tail {
		if off < winStart || off+8 > winStart+winLen {
			if err := refill(off, 8); err != nil {
				return err
			}
		}
		rel := off - winStart
		n := binary.LittleEndian.Uint32(buf[rel:])
		sum := binary.LittleEndian.Uint32(buf[rel+4:])
		end := off + 8 + uint64(n)
		if end > tail {
			return nil // incomplete frame at the durable tail
		}
		if end > winStart+winLen {
			if err := refill(off, 8+uint64(n)); err != nil {
				return err
			}
			rel = 0
		}
		payload := buf[rel+8 : rel+8+uint64(n)]
		ok := crc32.ChecksumIEEE(payload) == sum
		var r *Record
		if ok {
			var err error
			if r, err = decode(payload); err != nil {
				ok = false
			}
		}
		if !ok {
			if end < tail {
				// Durable bytes continue past the damage: committed records
				// would be silently dropped. Fail loudly instead.
				return faultinject.Corrupt(fmt.Errorf(
					"wal: corrupt record at lsn %d with %d durable bytes after it", off, tail-end))
			}
			return nil // corrupt final frame: crash remnant
		}
		if err := fn(off, r); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// ReadChunk returns up to max raw durable bytes starting at LSN from, for
// shipping to a replica. The caller names the position's identity; if the
// log has been truncated or replaced since (epoch or logID mismatch) the
// read fails with ErrEpoch and the shipper must renegotiate. A nil, nil
// return means the shipper is caught up — wait on TailChanged. The byte
// range is below the durable tail and therefore stable; no lock is held
// during the file read.
func (l *Log) ReadChunk(logID, epoch uint64, from LSN, max int) ([]byte, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if logID != l.logID || epoch != l.epoch || from > l.tail {
		l.mu.Unlock()
		return nil, ErrEpoch
	}
	tail := l.tail
	f := l.f
	l.mu.Unlock()
	if from >= tail {
		return nil, nil
	}
	n := tail - from
	if uint64(max) < n {
		n = uint64(max)
	}
	out := make([]byte, n)
	var err error
	if f != nil {
		_, err = f.ReadAt(out, int64(from))
	} else {
		l.memMu.Lock()
		if from+n <= uint64(len(l.mem)) {
			copy(out, l.mem[from:])
		} else {
			err = fmt.Errorf("wal: chunk read past memory log end")
		}
		l.memMu.Unlock()
	}
	if err != nil {
		l.mu.Lock()
		changed := l.logID != logID || l.epoch != epoch
		closed := l.closed
		l.mu.Unlock()
		if changed {
			return nil, ErrEpoch
		}
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("wal: chunk read: %w", err)
	}
	return out, nil
}

// DecodeFrames walks the whole frames at the start of b — a byte range
// shipped from another log via ReadChunk — calling fn with each frame's
// total length (header plus payload) and decoded record. It returns the
// number of bytes consumed: a trailing partial frame is left for the caller
// to buffer until the rest arrives (ReadChunk windows cut at byte, not
// frame, boundaries). A complete frame that fails its CRC or decode is a
// transport-corruption error, never a torn tail — the primary only ships
// bytes below its durable tail, which are always intact.
func DecodeFrames(b []byte, fn func(frameLen int, r *Record) error) (consumed int, err error) {
	off := 0
	for off+8 <= len(b) {
		n := int(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		end := off + 8 + n
		if end > len(b) {
			return off, nil // partial frame: wait for the rest of the chunk
		}
		payload := b[off+8 : end]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, faultinject.Corrupt(fmt.Errorf("wal: shipped frame at offset %d fails CRC", off))
		}
		r, derr := decode(payload)
		if derr != nil {
			return off, faultinject.Corrupt(fmt.Errorf("wal: shipped frame at offset %d undecodable", off))
		}
		if fn != nil {
			if err := fn(end-off, r); err != nil {
				return off, err
			}
		}
		off = end
	}
	return off, nil
}

// IngestRaw appends pre-framed record bytes — a chunk shipped from a
// primary's log — and flushes them to stable storage before returning.
// nrecs is the number of records the chunk contains (counter bookkeeping
// only). The chunk must hold whole frames: the replica's own appends (page
// images from its buffer pool's write guard) interleave at frame
// granularity, so a split frame would corrupt the local log mid-stream.
// The applier buffers any partial frame and ingests it once complete.
func (l *Log) IngestRaw(frames []byte, nrecs int) error {
	if len(frames) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.buffer = append(l.buffer, frames...)
	l.end += uint64(len(frames))
	end := l.end
	l.mu.Unlock()
	l.records.Add(uint64(nrecs))
	l.bytes.Add(uint64(len(frames)))
	return l.FlushTo(end)
}

// RecoveryPlan summarizes a log scan for crash recovery.
type RecoveryPlan struct {
	// Redo holds every data record of committed transactions, in LSN order.
	Redo []*Record
	// Undo holds the data records of uncommitted ("loser") transactions, in
	// reverse LSN order, ready to be compensated.
	Undo []*Record
	// Links holds every RecPageLink in LSN order. Chain growth is redone
	// unconditionally — regardless of the owning transaction's fate — and
	// never undone; see RecPageLink.
	Links []*Record
	// Images maps each page to its newest full-page image (see
	// RecPageImage). Recovery writes these back first, repairing any torn
	// in-place write, then lets the conditional redo/undo passes replay the
	// changes logged after the image was taken.
	Images map[store.PageID]*Record
	// ColSegDrops is the set of table ids whose columnar segments were
	// invalidated by any logged RecColSegDrop, honored unconditionally
	// (see RecColSegDrop).
	ColSegDrops map[uint64]bool
	// Committed is the set of committed transaction ids.
	Committed map[uint64]bool
}

// Analyze scans the log and partitions work into redo and undo sets.
func (l *Log) Analyze() (*RecoveryPlan, error) {
	plan := &RecoveryPlan{
		Committed:   map[uint64]bool{},
		Images:      map[store.PageID]*Record{},
		ColSegDrops: map[uint64]bool{},
	}
	var all []*Record
	err := l.Scan(func(_ LSN, r *Record) error {
		switch r.Type {
		case RecCommit:
			plan.Committed[r.Txn] = true
		case RecRollback:
			// Rolled-back work is treated like a loser: it must be undone,
			// but an explicit rollback already compensated it before the
			// crash, so mark it committed-to-nothing.
			plan.Committed[r.Txn] = false
		case RecInsert, RecDelete, RecUpdate:
			all = append(all, r)
		case RecPageLink:
			plan.Links = append(plan.Links, r)
		case RecPageImage:
			plan.Images[r.Page] = r // later image supersedes earlier
		case RecColSegDrop:
			plan.ColSegDrops[r.Table] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range all {
		if plan.Committed[r.Txn] {
			plan.Redo = append(plan.Redo, r)
		}
	}
	for i := len(all) - 1; i >= 0; i-- {
		if !plan.Committed[all[i].Txn] {
			plan.Undo = append(plan.Undo, all[i])
		}
	}
	return plan, nil
}

// Truncate discards the durable log after a checkpoint has made its
// contents redundant, and bumps the truncate epoch: every LSN handed out
// before the truncate names bytes that no longer exist, so consumers
// holding one (the log shipper, a resuming replica) fail their next
// ReadChunk with ErrEpoch instead of silently re-reading or skipping
// records at a reused offset. An in-flight group flush is drained first so
// the truncation never races the leader's WriteAt.
//
// Records appended after the checkpoint record but not yet flushed are
// carried over into the new epoch at offset zero rather than discarded: a
// committer racing the checkpoint has already been handed an LSN for them,
// and its FlushTo (clamped to the shrunken end) must land the record, not
// acknowledge a commit whose bytes vanished.
func (l *Log) Truncate() error {
	// Give the shipper a bounded window to drain the dying epoch so
	// caught-up replicas cross it without a full resync. The barrier runs
	// without l.mu (shippers need ReadChunk); flushes racing the barrier
	// can advance the tail past the drained point, which the replica-side
	// end-of-epoch check turns into a resync rather than silent loss.
	if b := l.truncBarrier.Load(); b != nil {
		l.mu.Lock()
		l.drainLocked()
		epoch, end := l.epoch, l.tail
		l.mu.Unlock()
		(*b)(epoch, end)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	if l.closed {
		return ErrClosed
	}
	l.tail = 0
	l.durTail.Store(0)
	l.end = uint64(len(l.buffer))
	l.epoch++
	l.memMu.Lock()
	l.mem = nil
	l.memMu.Unlock()
	l.truncates.Add(1)
	if l.f != nil {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	l.tailBroadcastLocked()
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	if err := l.Flush(); err != nil {
		return err
	}
	return l.CloseNoFlush()
}

// CloseNoFlush discards the unflushed buffer and closes the log file — the
// simulated power-loss path. The dropped buffer is exactly the log state a
// real crash would lose: records appended but never group-committed.
func (l *Log) CloseNoFlush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.drainLocked()
	l.buffer = l.buffer[:0]
	l.end = l.tail
	// Latch closed before the file goes away: a commit racing this close
	// must fail its flush (and ack nothing) rather than write into thin
	// air. Applies to memory-backed logs too — a crashed instance must not
	// keep acknowledging commits into its own vanishing heap.
	l.closed = true
	l.tailBroadcastLocked()
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}
