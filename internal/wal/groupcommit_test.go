package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anywheredb/internal/faultinject"
)

// gateInjector fails every WAL flush while armed; other operations pass.
type gateInjector struct {
	armed atomic.Bool
	hits  atomic.Int64
}

func (g *gateInjector) Fault(op faultinject.Op, arg uint64, data []byte) ([]byte, error) {
	if op == faultinject.OpWALFlush && g.armed.Load() {
		g.hits.Add(1)
		return nil, faultinject.Permanent(errors.New("gate: flush refused"))
	}
	return nil, nil
}

func (g *gateInjector) Crashpoint(string) error { return nil }

// slowInjector delays every WAL flush, giving committers time to pile up
// behind the in-flight fsync so batching is observable deterministically.
type slowInjector struct{ d time.Duration }

func (s *slowInjector) Fault(op faultinject.Op, arg uint64, data []byte) ([]byte, error) {
	if op == faultinject.OpWALFlush {
		time.Sleep(s.d)
	}
	return nil, nil
}

func (s *slowInjector) Crashpoint(string) error { return nil }

func TestAppendReturnsEndLSN(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	r := &Record{Type: RecBegin, Txn: 1}
	frameLen := uint64(8 + len(encode(r)))
	lsn := l.Append(r)
	if lsn != frameLen {
		t.Fatalf("first end-LSN %d, want frame length %d", lsn, frameLen)
	}
	lsn2 := l.Append(&Record{Type: RecCommit, Txn: 1})
	if lsn2 <= lsn {
		t.Fatalf("end-LSNs must increase: %d then %d", lsn, lsn2)
	}
	if err := l.FlushTo(lsn2); err != nil {
		t.Fatal(err)
	}
	if got := l.FlushedLSN(); got != lsn2 {
		t.Fatalf("FlushedLSN %d after FlushTo(%d)", got, lsn2)
	}
}

func TestFlushToAlreadyDurableIsFree(t *testing.T) {
	l, _ := Open("")
	lsn := l.Append(&Record{Type: RecCommit, Txn: 1})
	if err := l.FlushTo(lsn); err != nil {
		t.Fatal(err)
	}
	before := l.flushes.Load()
	for i := 0; i < 10; i++ {
		if err := l.FlushTo(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.flushes.Load(); got != before {
		t.Fatalf("FlushTo below the durable tail performed %d extra flushes", got-before)
	}
}

// TestGroupCommitBatches holds the fsync open with a slow injector while
// concurrent committers arrive, and asserts they were retired by fewer
// flushes than committers — the leader/follower batch is real.
func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "g.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetInjector(&slowInjector{d: 2 * time.Millisecond}, faultinject.RetryPolicy{}, nil)

	const committers = 16
	var wg sync.WaitGroup
	errs := make(chan error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn := l.Append(&Record{Type: RecCommit, Txn: uint64(i + 1)})
			if err := l.FlushTo(lsn); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	flushes := l.flushes.Load()
	if flushes >= committers {
		t.Fatalf("%d flushes for %d committers: no batching happened", flushes, committers)
	}
	if l.groupCommits.Load() == 0 {
		t.Fatal("no flush retired more than one committer")
	}
	n := 0
	if err := l.Scan(func(LSN, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != committers {
		t.Fatalf("scanned %d commit records, want %d", n, committers)
	}
}

// TestCommitFlushDelayGathers opens the log with a gather window and
// checks that committers arriving inside it share one flush.
func TestCommitFlushDelayGathers(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOptions(filepath.Join(dir, "d.log"), Options{CommitFlushDelay: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const committers = 8
	var wg sync.WaitGroup
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrivals well inside the 200ms window.
			time.Sleep(time.Duration(i) * time.Millisecond)
			lsn := l.Append(&Record{Type: RecCommit, Txn: uint64(i + 1)})
			if err := l.FlushTo(lsn); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := l.flushes.Load(); got != 1 {
		t.Fatalf("%d flushes, want 1 (all committers inside the gather window)", got)
	}
	if got := l.groupCommits.Load(); got != 1 {
		t.Fatalf("group_commits = %d, want 1", got)
	}
}

// TestFailedGroupFlushFailsEveryWaiter arms a permanent flush fault, sends
// a batch of concurrent committers in, and asserts every single one saw
// the error. Then it disarms the fault and verifies a later flush lands
// the stranded records in their original LSN order — the failed group's
// bytes must return to the head of the pending buffer.
func TestFailedGroupFlushFailsEveryWaiter(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "f.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	gate := &gateInjector{}
	gate.armed.Store(true)
	l.SetInjector(gate, faultinject.RetryPolicy{}, nil)

	const committers = 12
	lsns := make([]LSN, committers)
	var appended sync.WaitGroup
	start := make(chan struct{})
	var wg sync.WaitGroup
	got := make([]error, committers)
	for i := 0; i < committers; i++ {
		appended.Add(1)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsns[i] = l.Append(&Record{Type: RecCommit, Txn: uint64(i + 1)})
			appended.Done()
			<-start // all records appended before anyone flushes
			got[i] = l.FlushTo(lsns[i])
		}(i)
	}
	appended.Wait()
	close(start)
	wg.Wait()

	for i, err := range got {
		if err == nil {
			t.Fatalf("committer %d saw success from a failed group flush", i)
		}
		if !errors.Is(err, faultinject.ErrPermanent) {
			t.Fatalf("committer %d got %v, want the injected permanent error", i, err)
		}
	}
	if l.FlushedLSN() != 0 {
		t.Fatalf("durable tail advanced to %d across failed flushes", l.FlushedLSN())
	}

	// Disarm and retry: the stranded records must land, in order.
	gate.armed.Store(false)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	var txns []uint64
	if err := l.Scan(func(_ LSN, r *Record) error {
		txns = append(txns, r.Txn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(txns) != committers {
		t.Fatalf("recovered %d records after disarm, want %d", len(txns), committers)
	}
	seen := map[uint64]bool{}
	for _, id := range txns {
		if seen[id] {
			t.Fatalf("txn %d logged twice", id)
		}
		seen[id] = true
	}
}

// TestFlushedLSNInvariant hammers the log with concurrent appenders and
// flushers while a checker continuously asserts the satellite invariant:
// FlushedLSN never covers a record still sitting in an unsealed (or
// in-flight) buffer — i.e. every byte below FlushedLSN is a fully synced,
// CRC-valid record that Scan can walk.
func TestFlushedLSNInvariant(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "inv.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				lsn := l.Append(&Record{
					Type: RecInsert, Txn: uint64(w + 1),
					After: []byte(fmt.Sprintf("w%d-%d", w, i)),
				})
				if i%3 == 0 {
					if err := l.FlushTo(lsn); err != nil {
						t.Error(err)
						return
					}
					if got := l.FlushedLSN(); got < lsn {
						t.Errorf("FlushTo(%d) returned with FlushedLSN %d", lsn, got)
						return
					}
				}
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		flushed := l.FlushedLSN()
		if pending := l.PendingLSN(); flushed > pending {
			t.Fatalf("FlushedLSN %d ahead of PendingLSN %d", flushed, pending)
		}
		walked := uint64(0)
		if err := l.Scan(func(lsn LSN, r *Record) error {
			walked = lsn + 8 + uint64(len(encode(r)))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if walked < flushed {
			t.Fatalf("FlushedLSN %d covers bytes Scan cannot walk (valid prefix ends at %d)", flushed, walked)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSerialFlushMode checks the pre-group-commit baseline still works:
// every FlushTo write+syncs the whole pending buffer under the mutex.
func TestSerialFlushMode(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOptions(filepath.Join(dir, "s.log"), Options{SerialFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 5; i++ {
		lsn := l.Append(&Record{Type: RecCommit, Txn: uint64(i + 1)})
		if err := l.FlushTo(lsn); err != nil {
			t.Fatal(err)
		}
		if got := l.FlushedLSN(); got != lsn {
			t.Fatalf("serial FlushedLSN %d, want %d", got, lsn)
		}
	}
	if got := l.flushes.Load(); got != 5 {
		t.Fatalf("serial mode performed %d flushes, want 5 (one per commit)", got)
	}
}

// TestTruncateDrainsInflightFlush truncates while a slow flush is in
// flight and checks nothing corrupts: truncate must wait for the leader.
func TestTruncateDrainsInflightFlush(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(filepath.Join(dir, "t.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetInjector(&slowInjector{d: 5 * time.Millisecond}, faultinject.RetryPolicy{}, nil)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		lsn := l.Append(&Record{Type: RecCommit, Txn: 1})
		_ = l.FlushTo(lsn)
	}()
	time.Sleep(time.Millisecond) // let the leader enter its slow fsync
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := l.FlushedLSN(); got != 0 {
		t.Fatalf("FlushedLSN %d after truncate", got)
	}
	lsn := l.Append(&Record{Type: RecCommit, Txn: 2})
	if err := l.FlushTo(lsn); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l.Scan(func(LSN, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("post-truncate log has %d records, want 1", n)
	}
}
