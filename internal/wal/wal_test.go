package wal

import (
	"os"
	"path/filepath"
	"testing"

	"anywheredb/internal/store"
)

func TestAppendScanRoundTrip(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Type: RecBegin, Txn: 1},
		{Type: RecInsert, Txn: 1, Table: 7, Page: store.MakePageID(0, 3), Slot: 2, After: []byte("row")},
		{Type: RecUpdate, Txn: 1, Table: 7, Page: store.MakePageID(0, 3), Slot: 2, Before: []byte("row"), After: []byte("row2")},
		{Type: RecCommit, Txn: 1},
	}
	var lsns []LSN
	for _, r := range recs {
		lsns = append(lsns, l.Append(r))
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatal("LSNs must increase")
		}
	}

	var got []*Record
	err = l.Scan(func(lsn LSN, r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		w := recs[i]
		if r.Type != w.Type || r.Txn != w.Txn || r.Table != w.Table ||
			r.Page != w.Page || r.Slot != w.Slot ||
			string(r.Before) != string(w.Before) || string(r.After) != string(w.After) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, r, w)
		}
	}
}

func TestUnflushedRecordsNotDurable(t *testing.T) {
	l, _ := Open("")
	l.Append(&Record{Type: RecBegin, Txn: 1})
	n := 0
	l.Scan(func(LSN, *Record) error { n++; return nil })
	if n != 0 {
		t.Fatalf("unflushed record visible to scan")
	}
	l.Flush()
	l.Scan(func(LSN, *Record) error { n++; return nil })
	if n != 1 {
		t.Fatalf("flushed record not visible")
	}
}

func TestAnalyzeRedoUndo(t *testing.T) {
	l, _ := Open("")
	// Txn 1 commits, txn 2 is a loser, txn 3 rolled back explicitly.
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecInsert, Txn: 1, After: []byte("a")})
	l.Append(&Record{Type: RecBegin, Txn: 2})
	l.Append(&Record{Type: RecInsert, Txn: 2, After: []byte("b")})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	l.Append(&Record{Type: RecUpdate, Txn: 2, Before: []byte("b"), After: []byte("b2")})
	l.Append(&Record{Type: RecBegin, Txn: 3})
	l.Append(&Record{Type: RecDelete, Txn: 3, Before: []byte("c")})
	l.Append(&Record{Type: RecRollback, Txn: 3})
	l.Flush()

	plan, err := l.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Redo) != 1 || string(plan.Redo[0].After) != "a" {
		t.Fatalf("redo set wrong: %+v", plan.Redo)
	}
	if len(plan.Undo) != 3 {
		t.Fatalf("undo set size %d, want 3", len(plan.Undo))
	}
	// Undo is in reverse LSN order.
	if plan.Undo[0].Type != RecDelete || plan.Undo[1].Type != RecUpdate || plan.Undo[2].Type != RecInsert {
		t.Fatalf("undo order wrong: %v %v %v", plan.Undo[0].Type, plan.Undo[1].Type, plan.Undo[2].Type)
	}
	if !plan.Committed[1] || plan.Committed[2] || plan.Committed[3] {
		t.Fatalf("committed set wrong: %v", plan.Committed)
	}
}

func TestFileBackedDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: RecBegin, Txn: 9})
	l.Append(&Record{Type: RecCommit, Txn: 9})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var types []RecType
	l2.Scan(func(_ LSN, r *Record) error {
		types = append(types, r.Type)
		return nil
	})
	if len(types) != 2 || types[0] != RecBegin || types[1] != RecCommit {
		t.Fatalf("reopened log contents: %v", types)
	}
}

func TestCorruptTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.log")
	l, _ := Open(path)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	l.Close()

	// Append garbage simulating a torn write.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()

	l2, _ := Open(path)
	defer l2.Close()
	n := 0
	if err := l2.Scan(func(LSN, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("scan past corrupt tail returned %d records, want 2", n)
	}
}

func TestTruncate(t *testing.T) {
	l, _ := Open("")
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Flush()
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	n := 0
	l.Scan(func(LSN, *Record) error { n++; return nil })
	if n != 0 {
		t.Fatal("truncated log should be empty")
	}
	if l.FlushedLSN() != 0 {
		t.Fatal("truncate should reset LSN")
	}
}

func TestRecTypeString(t *testing.T) {
	if RecCommit.String() != "commit" || RecType(99).String() == "" {
		t.Fatal("RecType.String")
	}
}

func TestAnalyzeKeepsNewestPageImage(t *testing.T) {
	l, _ := Open("")
	p1 := store.MakePageID(0, 4)
	p2 := store.MakePageID(0, 9)
	l.Append(&Record{Type: RecPageImage, Page: p1, After: []byte("old-4")})
	l.Append(&Record{Type: RecPageImage, Page: p2, After: []byte("only-9")})
	l.Append(&Record{Type: RecPageImage, Page: p1, After: []byte("new-4")})
	l.Flush()

	plan, err := l.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Images) != 2 {
		t.Fatalf("image set size %d, want 2", len(plan.Images))
	}
	if string(plan.Images[p1].After) != "new-4" {
		t.Fatalf("page %v image %q, want the newest (%q)", p1, plan.Images[p1].After, "new-4")
	}
	if string(plan.Images[p2].After) != "only-9" {
		t.Fatalf("page %v image %q, want %q", p2, plan.Images[p2].After, "only-9")
	}
}

func TestTruncatedMidFrameTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.log")
	l, _ := Open(path)
	l.Append(&Record{Type: RecBegin, Txn: 1})
	l.Append(&Record{Type: RecCommit, Txn: 1})
	l.Append(&Record{Type: RecBegin, Txn: 2})
	l.Close()

	// Chop bytes off the last frame, as a crash mid-write would.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, _ := Open(path)
	defer l2.Close()
	var types []RecType
	if err := l2.Scan(func(_ LSN, r *Record) error {
		types = append(types, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != RecBegin || types[1] != RecCommit {
		t.Fatalf("scan past truncated tail returned %v, want [begin commit]", types)
	}
	// The log remains appendable after the damaged tail is discarded.
	l2.Append(&Record{Type: RecBegin, Txn: 3})
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := l2.Scan(func(LSN, *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("after re-append: %d records, want 3", n)
	}
}
