package sqlparse

import (
	"testing"

	"anywheredb/internal/val"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestCreateTable(t *testing.T) {
	s := mustParse(t, "CREATE TABLE emp (id INT, name VARCHAR(40), salary DOUBLE)")
	ct := s.(*CreateTable)
	if ct.Name != "emp" || len(ct.Cols) != 3 {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[0].Kind != val.KInt || ct.Cols[1].Kind != val.KStr || ct.Cols[2].Kind != val.KDouble {
		t.Fatalf("kinds: %+v", ct.Cols)
	}
}

func TestCreateIndex(t *testing.T) {
	s := mustParse(t, "CREATE UNIQUE INDEX pk ON emp (id, name)")
	ci := s.(*CreateIndex)
	if !ci.Unique || ci.Table != "emp" || len(ci.Cols) != 2 {
		t.Fatalf("%+v", ci)
	}
	s = mustParse(t, "CREATE INDEX by_name ON emp (name)")
	if s.(*CreateIndex).Unique {
		t.Fatal("unexpected unique")
	}
}

func TestCreateStatisticsAndCalibrate(t *testing.T) {
	s := mustParse(t, "CREATE STATISTICS emp (salary, name)")
	cs := s.(*CreateStatistics)
	if cs.Table != "emp" || len(cs.Cols) != 2 {
		t.Fatalf("%+v", cs)
	}
	mustParse(t, "CREATE STATISTICS emp")
	if _, ok := mustParse(t, "CALIBRATE DATABASE").(*Calibrate); !ok {
		t.Fatal("calibrate")
	}
}

func TestInsertValues(t *testing.T) {
	s := mustParse(t, "INSERT INTO emp (id, name) VALUES (1, 'alice'), (2, 'bob')")
	ins := s.(*Insert)
	if ins.Table != "emp" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}
	if ins.Rows[0][1].(*Lit).Val.S != "alice" {
		t.Fatal("literal")
	}
}

func TestInsertSelect(t *testing.T) {
	s := mustParse(t, "INSERT INTO emp2 SELECT * FROM emp WHERE id > 10")
	if s.(*Insert).Query == nil {
		t.Fatal("insert-select")
	}
}

func TestUpdateDelete(t *testing.T) {
	s := mustParse(t, "UPDATE emp SET salary = salary * 1.1, name = 'x' WHERE id = 5")
	up := s.(*Update)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	s = mustParse(t, "DELETE FROM emp WHERE salary < 100")
	if s.(*Delete).Where == nil {
		t.Fatal("delete where")
	}
	s = mustParse(t, "DELETE FROM emp")
	if s.(*Delete).Where != nil {
		t.Fatal("delete all")
	}
}

func TestSelectBasics(t *testing.T) {
	s := mustParse(t, "SELECT id, name AS n, salary * 2 FROM emp WHERE salary >= 100 AND name LIKE 'a%' ORDER BY salary DESC LIMIT 10")
	sel := s.(*Select)
	if len(sel.Items) != 3 || sel.Items[1].Alias != "n" {
		t.Fatalf("items %+v", sel.Items)
	}
	if sel.Limit != 10 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatal("order/limit")
	}
	and := sel.Where.(*BinOp)
	if and.Op != "AND" {
		t.Fatal("where")
	}
	if _, ok := and.R.(*Like); !ok {
		t.Fatal("like")
	}
}

func TestSelectJoins(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a, b WHERE a.x = b.y")
	sel := s.(*Select)
	j := sel.From.(*Join)
	if j.Kind != InnerJoin || j.On != nil {
		t.Fatal("comma join")
	}

	s = mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT OUTER JOIN c ON b.z = c.z")
	sel = s.(*Select)
	outer := sel.From.(*Join)
	if outer.Kind != LeftOuterJoin || outer.On == nil {
		t.Fatal("left outer")
	}
	inner := outer.Left.(*Join)
	if inner.Kind != InnerJoin || inner.On == nil {
		t.Fatal("inner join")
	}
}

func TestTableAliases(t *testing.T) {
	s := mustParse(t, "SELECT e.id FROM emp AS e, emp managers WHERE e.id = managers.id")
	sel := s.(*Select)
	j := sel.From.(*Join)
	if j.Left.(*BaseTable).Alias != "e" || j.Right.(*BaseTable).Alias != "managers" {
		t.Fatal("aliases")
	}
	cr := sel.Items[0].Expr.(*ColRef)
	if cr.Table != "e" || cr.Col != "id" {
		t.Fatal("qualified column")
	}
}

func TestGroupByHavingAggregates(t *testing.T) {
	s := mustParse(t, "SELECT dept, COUNT(*), SUM(salary), AVG(salary) FROM emp GROUP BY dept HAVING COUNT(*) > 5")
	sel := s.(*Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("group/having")
	}
	if !sel.Items[1].Expr.(*FuncCall).Star {
		t.Fatal("count star")
	}
	if sel.Items[2].Expr.(*FuncCall).Name != "SUM" {
		t.Fatal("sum")
	}
}

func TestDistinctAndCountDistinct(t *testing.T) {
	s := mustParse(t, "SELECT DISTINCT dept FROM emp")
	if !s.(*Select).Distinct {
		t.Fatal("distinct")
	}
	s = mustParse(t, "SELECT COUNT(DISTINCT dept) FROM emp")
	if !s.(*Select).Items[0].Expr.(*FuncCall).Distinct {
		t.Fatal("count distinct")
	}
}

func TestPredicates(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND c BETWEEN 1 AND 10 AND d NOT LIKE '%x%' AND e IN (1,2,3) AND f NOT IN (SELECT g FROM u) AND NOT EXISTS (SELECT * FROM v)")
	sel := s.(*Select)
	if sel.Where == nil {
		t.Fatal("where")
	}
	// Walk down the AND chain counting predicate types.
	var kinds []string
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinOp:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			kinds = append(kinds, x.Op)
		case *IsNull:
			if x.Neg {
				kinds = append(kinds, "isnotnull")
			} else {
				kinds = append(kinds, "isnull")
			}
		case *Between:
			kinds = append(kinds, "between")
		case *Like:
			kinds = append(kinds, "notlike")
		case *InList:
			kinds = append(kinds, "in")
		case *InSelect:
			kinds = append(kinds, "inselect")
		case *UnOp:
			kinds = append(kinds, "not")
		}
	}
	walk(sel.Where)
	want := []string{"isnull", "isnotnull", "between", "notlike", "in", "inselect", "not"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v", kinds)
		}
	}
}

func TestUnionAll(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v")
	sel := s.(*Select)
	if sel.Union == nil || !sel.UnionAll {
		t.Fatal("first union all")
	}
	if sel.Union.Union == nil || sel.Union.UnionAll {
		t.Fatal("second union distinct")
	}
}

func TestRecursiveCTE(t *testing.T) {
	s := mustParse(t, `WITH RECURSIVE nums (n) AS (
		SELECT 1
		UNION ALL
		SELECT n + 1 FROM nums WHERE n < 10
	) SELECT n FROM nums`)
	sel := s.(*Select)
	if len(sel.With) != 1 || !sel.With[0].Recursive || sel.With[0].Name != "nums" {
		t.Fatalf("%+v", sel.With)
	}
	if sel.With[0].Query.Union == nil || !sel.With[0].Query.UnionAll {
		t.Fatal("recursive body must be a UNION ALL")
	}
}

func TestTxnStatements(t *testing.T) {
	if _, ok := mustParse(t, "BEGIN").(*Begin); !ok {
		t.Fatal("begin")
	}
	if _, ok := mustParse(t, "COMMIT").(*Commit); !ok {
		t.Fatal("commit")
	}
	if _, ok := mustParse(t, "ROLLBACK;").(*Rollback); !ok {
		t.Fatal("rollback")
	}
}

func TestDropAndLoad(t *testing.T) {
	if mustParse(t, "DROP TABLE t").(*DropTable).Name != "t" {
		t.Fatal("drop")
	}
	lt := mustParse(t, "LOAD TABLE emp FROM '/tmp/emp.csv'").(*LoadTable)
	if lt.Table != "emp" || lt.Path != "/tmp/emp.csv" {
		t.Fatalf("%+v", lt)
	}
}

func TestParams(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = ? AND b > ?")
	sel := s.(*Select)
	and := sel.Where.(*BinOp)
	if and.L.(*BinOp).R.(*Param).Idx != 1 || and.R.(*BinOp).R.(*Param).Idx != 2 {
		t.Fatal("params")
	}
}

func TestStringEscapes(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE n = 'o''brien'")
	sel := s.(*Select)
	if sel.Where.(*BinOp).R.(*Lit).Val.S != "o'brien" {
		t.Fatal("escape")
	}
}

func TestComments(t *testing.T) {
	mustParse(t, "SELECT 1 -- trailing comment\n")
}

func TestArithPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 + 2 * 3 - 4 / 2")
	e := s.(*Select).Items[0].Expr.(*BinOp)
	// ((1 + (2*3)) - (4/2))
	if e.Op != "-" {
		t.Fatalf("top op %s", e.Op)
	}
	add := e.L.(*BinOp)
	if add.Op != "+" || add.R.(*BinOp).Op != "*" {
		t.Fatal("precedence")
	}
}

func TestNegativeNumbersAndNull(t *testing.T) {
	s := mustParse(t, "SELECT -5, NULL, 2.5e3")
	items := s.(*Select).Items
	if items[0].Expr.(*UnOp).Op != "-" {
		t.Fatal("unary minus")
	}
	if !items[1].Expr.(*Lit).Val.IsNull() {
		t.Fatal("null literal")
	}
	if items[2].Expr.(*Lit).Val.F != 2500 {
		t.Fatal("scientific")
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM",
		"CREATE TABLE t (x BLOB)",
		"CREATE UNIQUE TABLE t (x INT)",
		"INSERT INTO t",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t WHERE a = 1 extra garbage ~",
		"SELECT * FROM t; SELECT 2",
		"UPDATE t SET",
		"LOAD TABLE t FROM missing_quotes",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
