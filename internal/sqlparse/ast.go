// Package sqlparse provides the SQL lexer, parser, and AST for the engine's
// SQL dialect: DDL (CREATE TABLE / INDEX / STATISTICS, DROP, CALIBRATE
// DATABASE, LOAD TABLE), DML (INSERT / UPDATE / DELETE), and queries with
// joins (including LEFT OUTER), grouping, aggregation, ordering, DISTINCT,
// subqueries (EXISTS / IN), UNION [ALL], and recursive common table
// expressions.
package sqlparse

import "anywheredb/internal/val"

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// Expr is any scalar or boolean expression.
type Expr interface{ exprNode() }

// FromItem is a table reference tree in a FROM clause.
type FromItem interface{ fromNode() }

// --- Statements ----------------------------------------------------------

// ColDef defines a column in CREATE TABLE.
type ColDef struct {
	Name string
	Kind val.Kind
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name string
	Cols []ColDef
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols...).
type CreateIndex struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// CreateStatistics is CREATE STATISTICS table [(cols...)].
type CreateStatistics struct {
	Table string
	Cols  []string
}

// Calibrate is CALIBRATE DATABASE.
type Calibrate struct{}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// Insert is INSERT INTO t [(cols)] VALUES (...), (...) | SELECT ...
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
	Query *Select
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// Update is UPDATE t SET ... [WHERE ...].
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// Begin, Commit, Rollback control transactions. BEGIN READ ONLY starts a
// snapshot transaction: repeatable reads, no locks, writes rejected.
type Begin struct {
	ReadOnly bool
}
type Commit struct{}
type Rollback struct{}

// Explain is EXPLAIN [ANALYZE] <statement>: print the statement's plan
// tree with estimated rows/cost, and — with ANALYZE — execute it and print
// the per-operator actuals alongside.
type Explain struct {
	Analyze bool
	Stmt    Statement
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CTE is one WITH [RECURSIVE] name (cols) AS (select) clause.
type CTE struct {
	Name      string
	Cols      []string
	Query     *Select
	Recursive bool
}

// Select is a query block, possibly with UNION [ALL] continuations and
// WITH clauses.
type Select struct {
	With     []CTE
	Distinct bool
	Items    []SelectItem
	From     FromItem // nil for SELECT without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Union    *Select
	UnionAll bool
}

func (*CreateTable) stmtNode()      {}
func (*CreateIndex) stmtNode()      {}
func (*CreateStatistics) stmtNode() {}
func (*Calibrate) stmtNode()        {}
func (*DropTable) stmtNode()        {}
func (*Insert) stmtNode()           {}
func (*Update) stmtNode()           {}
func (*Delete) stmtNode()           {}
func (*Begin) stmtNode()            {}
func (*Commit) stmtNode()           {}
func (*Rollback) stmtNode()         {}
func (*Select) stmtNode()           {}
func (*Explain) stmtNode()          {}

// --- From items ----------------------------------------------------------

// BaseTable is a named table (or CTE) reference.
type BaseTable struct {
	Name  string
	Alias string
}

// JoinKind distinguishes join types.
type JoinKind int

const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

// Join combines two from-items.
type Join struct {
	Kind  JoinKind
	Left  FromItem
	Right FromItem
	On    Expr // nil for comma joins (predicates live in WHERE)
}

func (*BaseTable) fromNode() {}
func (*Join) fromNode()      {}

// --- Expressions ---------------------------------------------------------

// ColRef references table.column (Table may be empty).
type ColRef struct {
	Table string
	Col   string
}

// Lit is a literal value.
type Lit struct{ Val val.Value }

// Param is a positional ? placeholder (1-based).
type Param struct{ Idx int }

// BinOp is a binary operation: comparison, logical, or arithmetic.
type BinOp struct {
	Op   string // = <> < <= > >= AND OR + - * / %
	L, R Expr
}

// UnOp is NOT or unary minus.
type UnOp struct {
	Op string // NOT -
	E  Expr
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	E   Expr
	Neg bool
}

// Between is expr [NOT] BETWEEN lo AND hi.
type Between struct {
	E, Lo, Hi Expr
	Neg       bool
}

// Like is expr [NOT] LIKE pattern.
type Like struct {
	E       Expr
	Pattern Expr
	Neg     bool
}

// InList is expr [NOT] IN (v1, v2, ...).
type InList struct {
	E    Expr
	List []Expr
	Neg  bool
}

// InSelect is expr [NOT] IN (SELECT ...).
type InSelect struct {
	E   Expr
	Sub *Select
	Neg bool
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Sub *Select
	Neg bool
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*ColRef) exprNode()   {}
func (*Lit) exprNode()      {}
func (*Param) exprNode()    {}
func (*BinOp) exprNode()    {}
func (*UnOp) exprNode()     {}
func (*IsNull) exprNode()   {}
func (*Between) exprNode()  {}
func (*Like) exprNode()     {}
func (*InList) exprNode()   {}
func (*InSelect) exprNode() {}
func (*Exists) exprNode()   {}
func (*FuncCall) exprNode() {}
