package sqlparse

import "strings"

// Fingerprint normalizes a statement's text for workload aggregation:
// literals and parameter markers collapse to "?", keywords upper-case,
// identifiers lower-case, whitespace and comments squeeze to single
// spaces. Two executions of the same statement shape with different
// constants share one fingerprint — the key the flight recorder's digest
// table (the pg_stat_statements analog) aggregates on.
//
// IN-list and VALUES arity is preserved ("IN ( ?, ? )" vs "IN ( ? )"):
// arity changes plan shape, so the digest consumers (admission control,
// index consultant) want them distinct.
//
// Text that does not lex falls back to a whitespace-squeezed, lower-cased
// copy so every statement — including ones the parser later rejects —
// lands in some digest row.
func Fingerprint(sql string) string {
	toks, err := lex(sql)
	if err != nil {
		return strings.Join(strings.Fields(strings.ToLower(sql)), " ")
	}
	var sb strings.Builder
	sb.Grow(len(sql))
	for _, t := range toks {
		if t.kind == tokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.kind {
		case tokInt, tokFloat, tokString, tokParam:
			sb.WriteByte('?')
		case tokIdent:
			sb.WriteString(strings.ToLower(t.text))
		default: // keywords (already upper), operators
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}
