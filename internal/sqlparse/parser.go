package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"anywheredb/internal/val"
)

// LoadTable is LOAD TABLE name FROM 'path' [STORE COLUMNAR] (CSV, §3.2
// builds statistics during the load; the optional suffix seals the loaded
// rows into column segments immediately).
type LoadTable struct {
	Table         string
	Path          string
	StoreColumnar bool
}

func (*LoadTable) stmtNode() {}

// AlterTableStore is ALTER TABLE name STORE COLUMNAR|ROW: switch the
// table's scan layout between heap-only and heap+column-segments.
type AlterTableStore struct {
	Table    string
	Columnar bool
}

func (*AlterTableStore) stmtNode() {}

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
	// params counts ? placeholders seen.
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.accept(tokKeyword, "EXPLAIN"):
		analyze := p.accept(tokKeyword, "ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(*Explain); nested {
			return nil, p.errf("EXPLAIN cannot be nested")
		}
		return &Explain{Analyze: analyze, Stmt: inner}, nil
	case p.at(tokKeyword, "SELECT"), p.at(tokKeyword, "WITH"):
		return p.parseSelect()
	case p.accept(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.accept(tokKeyword, "DROP"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.accept(tokKeyword, "BEGIN"):
		if p.accept(tokKeyword, "READ") {
			if _, err := p.expect(tokKeyword, "ONLY"); err != nil {
				return nil, err
			}
			return &Begin{ReadOnly: true}, nil
		}
		return &Begin{}, nil
	case p.accept(tokKeyword, "COMMIT"):
		return &Commit{}, nil
	case p.accept(tokKeyword, "ROLLBACK"):
		return &Rollback{}, nil
	case p.accept(tokKeyword, "CALIBRATE"):
		if _, err := p.expect(tokKeyword, "DATABASE"); err != nil {
			return nil, err
		}
		return &Calibrate{}, nil
	case p.accept(tokKeyword, "LOAD"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		if !p.at(tokString, "") {
			return nil, p.errf("expected file path string")
		}
		lt := &LoadTable{Table: name, Path: p.next().text}
		if p.accept(tokKeyword, "STORE") {
			if _, err := p.expect(tokKeyword, "COLUMNAR"); err != nil {
				return nil, err
			}
			lt.StoreColumnar = true
		}
		return lt, nil
	case p.accept(tokKeyword, "ALTER"):
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "STORE"); err != nil {
			return nil, err
		}
		switch {
		case p.accept(tokKeyword, "COLUMNAR"):
			return &AlterTableStore{Table: name, Columnar: true}, nil
		case p.accept(tokKeyword, "ROW"):
			return &AlterTableStore{Table: name}, nil
		}
		return nil, p.errf("expected COLUMNAR or ROW")
	}
	return nil, p.errf("unexpected statement start %q", p.cur().text)
}

func (p *parser) parseCreate() (Statement, error) {
	unique := p.accept(tokKeyword, "UNIQUE")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique {
			return nil, p.errf("UNIQUE TABLE is not valid")
		}
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex(unique)
	case p.accept(tokKeyword, "STATISTICS"):
		if unique {
			return nil, p.errf("UNIQUE STATISTICS is not valid")
		}
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		cs := &CreateStatistics{Table: tbl}
		if p.accept(tokOp, "(") {
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				cs.Cols = append(cs.Cols, c)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		}
		return cs, nil
	}
	return nil, p.errf("expected TABLE, INDEX, or STATISTICS after CREATE")
}

func kindOfType(t string) (val.Kind, bool) {
	switch t {
	case "INT", "INTEGER", "BIGINT":
		return val.KInt, true
	case "DOUBLE", "REAL", "FLOAT":
		return val.KDouble, true
	case "VARCHAR", "CHAR", "TEXT", "STRING":
		return val.KStr, true
	}
	return 0, false
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokKeyword {
			return nil, p.errf("expected column type, found %q", t.text)
		}
		kind, ok := kindOfType(t.text)
		if !ok {
			return nil, p.errf("unknown type %q", t.text)
		}
		p.pos++
		// Optional (n) length, ignored.
		if p.accept(tokOp, "(") {
			if !p.at(tokInt, "") {
				return nil, p.errf("expected length")
			}
			p.next()
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
		}
		ct.Cols = append(ct.Cols, ColDef{Name: cname, Kind: kind})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: tbl, Unique: unique}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Cols = append(ci.Cols, c)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: tbl}
	if p.accept(tokOp, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "VALUES") {
		for {
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(tokOp, ",") {
					break
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		return ins, nil
	}
	if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = q
		return ins, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (p *parser) parseUpdate() (Statement, error) {
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: tbl}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, SetClause{Col: col, Expr: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: tbl}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// parseSelect parses WITH? SELECT ... UNION ... ORDER BY ... LIMIT.
func (p *parser) parseSelect() (*Select, error) {
	var ctes []CTE
	if p.accept(tokKeyword, "WITH") {
		recursive := p.accept(tokKeyword, "RECURSIVE")
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			cte := CTE{Name: name, Recursive: recursive}
			if p.accept(tokOp, "(") {
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					cte.Cols = append(cte.Cols, c)
					if !p.accept(tokOp, ",") {
						break
					}
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, "("); err != nil {
				return nil, err
			}
			q, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			cte.Query = q
			ctes = append(ctes, cte)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	sel, err := p.parseSelectBody()
	if err != nil {
		return nil, err
	}
	sel.With = ctes

	// UNION [ALL] chains attach to the outermost select.
	cur := sel
	for p.accept(tokKeyword, "UNION") {
		all := p.accept(tokKeyword, "ALL")
		nxt, err := p.parseSelectBody()
		if err != nil {
			return nil, err
		}
		cur.Union = nxt
		cur.UnionAll = all
		cur = nxt
	}

	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	sel.Limit = -1
	if p.accept(tokKeyword, "LIMIT") {
		if !p.at(tokInt, "") {
			return nil, p.errf("expected LIMIT count")
		}
		n, _ := strconv.ParseInt(p.next().text, 10, 64)
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectBody() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		if p.accept(tokOp, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		fi, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = fi
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	return sel, nil
}

func (p *parser) parseFrom() (FromItem, error) {
	left, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, ","):
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			left = &Join{Kind: InnerJoin, Left: left, Right: right}
		case p.at(tokKeyword, "JOIN") || p.at(tokKeyword, "INNER") || p.at(tokKeyword, "LEFT"):
			kind := InnerJoin
			if p.accept(tokKeyword, "LEFT") {
				p.accept(tokKeyword, "OUTER")
				kind = LeftOuterJoin
			} else {
				p.accept(tokKeyword, "INNER")
			}
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			var on Expr
			if p.accept(tokKeyword, "ON") {
				on, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			left = &Join{Kind: kind, Left: left, Right: right, On: on}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTableRef() (FromItem, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Qualified names (sys.properties) keep the dot in the table name;
	// binding resolves them against virtual-table providers.
	if p.accept(tokOp, ".") {
		second, err := p.ident()
		if err != nil {
			return nil, err
		}
		name = name + "." + second
	}
	bt := &BaseTable{Name: name}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.at(tokIdent, "") {
		bt.Alias = p.next().text
	}
	return bt, nil
}

// --- Expressions: precedence climbing ------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate handles comparisons and the SQL predicates IS NULL,
// BETWEEN, LIKE, IN, EXISTS.
func (p *parser) parsePredicate() (Expr, error) {
	if p.at(tokKeyword, "EXISTS") {
		p.next()
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &Exists{Sub: sub}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	neg := false
	if p.at(tokKeyword, "NOT") {
		// lookahead for NOT BETWEEN / NOT LIKE / NOT IN
		save := p.pos
		p.next()
		if p.at(tokKeyword, "BETWEEN") || p.at(tokKeyword, "LIKE") || p.at(tokKeyword, "IN") {
			neg = true
		} else {
			p.pos = save
			return l, nil
		}
	}
	switch {
	case p.accept(tokKeyword, "IS"):
		n := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{E: l, Neg: n}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{E: l, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.accept(tokKeyword, "LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Like{E: l, Pattern: pat, Neg: neg}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		if p.at(tokKeyword, "SELECT") || p.at(tokKeyword, "WITH") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return &InSelect{E: l, Sub: sub, Neg: neg}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &InList{E: l, List: list, Neg: neg}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokOp, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "+", L: l, R: r}
		case p.accept(tokOp, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "*", L: l, R: r}
		case p.accept(tokOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "/", L: l, R: r}
		case p.accept(tokOp, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &Lit{Val: val.NewInt(n)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Val: val.NewDouble(f)}, nil
	case tokString:
		p.next()
		return &Lit{Val: val.NewStr(t.text)}, nil
	case tokParam:
		p.next()
		p.params++
		return &Param{Idx: p.params}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.next()
			return &Lit{Val: val.Null}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tokIdent:
		name := p.next().text
		// Function call?
		if p.accept(tokOp, "(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.accept(tokOp, "*") {
				fc.Star = true
			} else if !p.at(tokOp, ")") {
				fc.Distinct = p.accept(tokKeyword, "DISTINCT")
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.accept(tokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Col: col}, nil
		}
		return &ColRef{Col: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
