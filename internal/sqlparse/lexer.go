package sqlparse

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokInt
	tokFloat
	tokString
	tokOp    // operators and punctuation
	tokParam // ?
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "IS": true, "IN": true, "BETWEEN": true, "LIKE": true,
	"EXISTS": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"ON": true, "UNION": true, "ALL": true, "WITH": true, "RECURSIVE": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true,
	"STATISTICS": true, "DROP": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "CALIBRATE": true,
	"DATABASE": true, "INT": true, "INTEGER": true, "BIGINT": true,
	"DOUBLE": true, "REAL": true, "FLOAT": true, "VARCHAR": true,
	"CHAR": true, "TEXT": true, "STRING": true, "LOAD": true,
	"EXPLAIN": true, "ANALYZE": true, "ALTER": true, "STORE": true,
	"COLUMNAR": true, "ROW": true, "READ": true, "ONLY": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.emit(token{kind: tokParam, text: "?", pos: l.pos})
			l.pos++
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.emit(token{kind: tokKeyword, text: up, pos: start})
	} else {
		l.emit(token{kind: tokIdent, text: text, pos: start})
	}
}

func (l *lexer) lexNumber() {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
		} else if c == '.' && !isFloat {
			isFloat = true
			l.pos++
		} else if (c == 'e' || c == 'E') && l.pos > start {
			isFloat = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		} else {
			break
		}
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	l.emit(token{kind: kind, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

var twoCharOps = map[string]bool{"<>": true, "<=": true, ">=": true, "!=": true}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			if two == "!=" {
				two = "<>"
			}
			l.emit(token{kind: tokOp, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.emit(token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
