package sqlparse

import "testing"

func TestFingerprint(t *testing.T) {
	cases := []struct {
		name string
		in   []string // all must share one fingerprint
		want string
	}{
		{
			name: "int literals collapse",
			in: []string{
				"SELECT a FROM t WHERE b = 1",
				"SELECT a FROM t WHERE b = 99999",
				"select  a\nfrom t where b=42",
			},
			want: "SELECT a FROM t WHERE b = ?",
		},
		{
			name: "strings floats and params collapse",
			in: []string{
				"INSERT INTO t VALUES (1, 'x', 2.5)",
				"INSERT INTO t VALUES (?, ?, ?)",
				"insert into T values (7, 'long string here', 1e9)",
			},
			want: "INSERT INTO t VALUES ( ? , ? , ? )",
		},
		{
			name: "identifier case folds, keyword case folds up",
			in: []string{
				"SELECT Foo FROM Bar",
				"select foo from bar",
			},
			want: "SELECT foo FROM bar",
		},
		{
			name: "comments and whitespace vanish",
			in: []string{
				"SELECT a FROM t -- trailing comment\nWHERE b < 10",
				"SELECT a FROM t WHERE b < 3",
			},
			want: "SELECT a FROM t WHERE b < ?",
		},
	}
	for _, tc := range cases {
		for _, sql := range tc.in {
			if got := Fingerprint(sql); got != tc.want {
				t.Errorf("%s: Fingerprint(%q) = %q, want %q", tc.name, sql, got, tc.want)
			}
		}
	}
}

func TestFingerprintPreservesArity(t *testing.T) {
	a := Fingerprint("SELECT a FROM t WHERE b IN (1, 2)")
	b := Fingerprint("SELECT a FROM t WHERE b IN (1, 2, 3)")
	if a == b {
		t.Fatalf("IN-list arity collapsed: %q", a)
	}
}

func TestFingerprintLexErrorFallback(t *testing.T) {
	// '#' does not lex; the fallback is a whitespace-squeezed lower-cased
	// copy, so even rejected text lands in a stable digest row.
	got := Fingerprint("SELECT  # broken")
	if got != "select # broken" {
		t.Fatalf("fallback fingerprint = %q", got)
	}
}
