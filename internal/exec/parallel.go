package exec

import (
	"sync"
	"sync/atomic"

	"anywheredb/internal/val"
)

// PipeJoin describes one hash join stage in a parallel pipeline: an input
// that is built into a shared hash table, the key expressions over the
// build rows, and the key expressions over the accumulated pipeline row.
type PipeJoin struct {
	Build     Operator
	BuildKeys []Expr
	ProbeKeys []Expr
	// UseBloom adds a Bloom filter in front of the hash table (§4.4 lists
	// Bloom filters among the operators supported by the parallel
	// framework).
	UseBloom bool
}

// ParallelPipeline implements the intra-query parallel hash-join pipeline
// of §4.4, after Manegold et al.: a single source scan feeds a pipeline of
// hash joins; any number of worker goroutines fetch rows from the scan
// first-come-first-served and probe every hash table in the pipeline.
// Extensions from the paper:
//   - the build phases are parallelized the same way (workers build
//     separate tables that are merged), and
//   - the number of workers can be reduced while the query runs
//     (SetWorkers), letting the server adapt to load; reducing to one
//     worker degrades gracefully to almost-serial cost.
//
// Output rows are source ⊕ build₁ ⊕ build₂ ⊕ … in pipeline order.
type ParallelPipeline struct {
	Source Operator
	Joins  []PipeJoin

	workers atomic.Int32
	tables  []*pipeTable
	out     []Row
	pos     int
	// BuildParallel toggles the parallel build extension.
	BuildParallel bool
}

type pipeTable struct {
	ht    map[uint64][]Row
	bloom []uint64
	mask  uint64
}

// SetWorkers changes the worker count; takes effect at the next phase and,
// during the probe phase, as workers check in.
func (p *ParallelPipeline) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	p.workers.Store(int32(n))
}

func (p *ParallelPipeline) Open(ctx *Ctx) error {
	if p.workers.Load() == 0 {
		w := ctx.Workers
		if w < 1 {
			w = 1
		}
		p.workers.Store(int32(w))
	}
	p.tables = make([]*pipeTable, len(p.Joins))
	p.out = nil
	p.pos = 0

	// Build each join's table, workers fetching build rows FCFS.
	for ji := range p.Joins {
		t, err := p.buildTable(ctx, &p.Joins[ji])
		if err != nil {
			return err
		}
		p.tables[ji] = t
	}
	// Probe phase.
	return p.probe(ctx)
}

func (p *ParallelPipeline) buildTable(ctx *Ctx, j *PipeJoin) (*pipeTable, error) {
	rows, err := Drain(ctx, j.Build)
	if err != nil {
		return nil, err
	}
	nw := int(p.workers.Load())
	if !p.BuildParallel || nw <= 1 || len(rows) < 2*nw {
		t := newPipeTable(len(rows), j.UseBloom)
		for _, row := range rows {
			if err := t.add(j.BuildKeys, row); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	// Parallel build: workers claim batches of rows first-come-first-served,
	// building separate hash tables that are merged afterwards (§4.4
	// extension). The claim size is re-read per batch, so governor or worker
	// changes apply at the next claim.
	var cursor atomic.Int64
	parts := make([]*pipeTable, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := newPipeTable(len(rows)/nw+1, j.UseBloom)
			parts[w] = t
			for {
				lo, hi := claimBatch(ctx, &cursor, len(rows))
				if lo >= hi {
					return
				}
				for _, row := range rows[lo:hi] {
					if err := t.add(j.BuildKeys, row); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Merge the per-worker tables into one.
	merged := newPipeTable(len(rows), j.UseBloom)
	for _, t := range parts {
		for h, rs := range t.ht {
			merged.ht[h] = append(merged.ht[h], rs...)
		}
		if merged.bloom != nil {
			for i := range t.bloom {
				merged.bloom[i] |= t.bloom[i]
			}
		}
	}
	return merged, nil
}

func newPipeTable(sizeHint int, bloom bool) *pipeTable {
	t := &pipeTable{ht: make(map[uint64][]Row, sizeHint)}
	if bloom {
		// Fixed 64K-bit filter: plenty for test scales, two probes.
		t.bloom = make([]uint64, 1024)
		t.mask = 1024*64 - 1
	}
	return t
}

func (t *pipeTable) add(keys []Expr, row Row) error {
	kv, ok, err := evalKeys(keys, row)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	h := val.HashRow(kv)
	t.ht[h] = append(t.ht[h], row)
	if t.bloom != nil {
		t.bloomSet(h)
		t.bloomSet(h * 0x9E3779B97F4A7C15)
	}
	return nil
}

func (t *pipeTable) bloomSet(h uint64) {
	b := h & t.mask
	atomicOr(&t.bloom[b/64], 1<<(b%64))
}

func atomicOr(p *uint64, v uint64) {
	// Parallel build merges afterwards, so plain OR is safe per-table;
	// this helper exists to make the write explicit.
	*p |= v
}

func (t *pipeTable) bloomMiss(h uint64) bool {
	if t.bloom == nil {
		return false
	}
	b1 := h & t.mask
	b2 := (h * 0x9E3779B97F4A7C15) & t.mask
	return t.bloom[b1/64]&(1<<(b1%64)) == 0 || t.bloom[b2/64]&(1<<(b2%64)) == 0
}

// claimBatch reserves the next batch of row indexes [lo, hi) from a shared
// FCFS cursor. The claim size is ctx.BatchSize(), re-read per claim, so the
// §4.4 adaptation points (governor squeeze, worker changes) apply at batch
// granularity: this is the "exchange carries batches, not rows" half of the
// vectored protocol.
func claimBatch(ctx *Ctx, cursor *atomic.Int64, total int) (int, int) {
	n := int64(ctx.BatchSize())
	hi := cursor.Add(n)
	lo := hi - n
	if lo >= int64(total) {
		return total, total
	}
	if hi > int64(total) {
		hi = int64(total)
	}
	return int(lo), int(hi)
}

// pipeOne pushes one source row through every join in the pipeline,
// returning the resulting output rows. Safe for concurrent use: it only
// reads the shared, immutable tables.
func (p *ParallelPipeline) pipeOne(src Row) ([]Row, error) {
	rows := []Row{src}
	for ji := range p.Joins {
		j := &p.Joins[ji]
		t := p.tables[ji]
		var next []Row
		for _, r := range rows {
			kv, ok, err := evalKeys(j.ProbeKeys, r)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			h := val.HashRow(kv)
			if t.bloomMiss(h) {
				continue
			}
			for _, brow := range t.ht[h] {
				bkv, ok, err := evalKeys(j.BuildKeys, brow)
				if err != nil {
					return nil, err
				}
				if !ok || !valsEqual(kv, bkv) {
					continue
				}
				next = append(next, concatRows(r, brow))
			}
		}
		rows = next
		if len(rows) == 0 {
			break
		}
	}
	return rows, nil
}

// probe runs the parallel probe phase: workers claim batches of source rows
// FCFS and push each through every join in the pipeline.
func (p *ParallelPipeline) probe(ctx *Ctx) error {
	srcRows, err := Drain(ctx, p.Source)
	if err != nil {
		return err
	}
	nw := int(p.workers.Load())
	if nw < 1 {
		nw = 1
	}
	var cursor atomic.Int64
	outs := make([][]Row, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Row
			for {
				// Dynamic reduction: workers beyond the current target stop
				// taking new batches (§4.4).
				if int32(w) >= p.workers.Load() {
					break
				}
				if err := ctx.Interrupted(); err != nil {
					errs[w] = err
					return
				}
				lo, hi := claimBatch(ctx, &cursor, len(srcRows))
				if lo >= hi {
					break
				}
				for _, src := range srcRows[lo:hi] {
					rows, err := p.pipeOne(src)
					if err != nil {
						errs[w] = err
						return
					}
					local = append(local, rows...)
				}
			}
			outs[w] = local
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// Workers that stopped early leave a cursor remainder; finish serially.
	for {
		lo, hi := claimBatch(ctx, &cursor, len(srcRows))
		if lo >= hi {
			break
		}
		for _, src := range srcRows[lo:hi] {
			rows, err := p.pipeOne(src)
			if err != nil {
				return err
			}
			p.out = append(p.out, rows...)
		}
	}
	for _, o := range outs {
		p.out = append(p.out, o...)
	}
	return nil
}

func valsEqual(a, b []val.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if val.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func (p *ParallelPipeline) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, p.out, &p.pos)
	return nil
}

func (p *ParallelPipeline) Close(ctx *Ctx) error {
	p.tables = nil
	p.out = nil
	return nil
}
