package exec

import (
	"anywheredb/internal/heap"
	"anywheredb/internal/table"
	"anywheredb/internal/val"
)

// DefaultPartitions is the small, fixed number of partitions hash buckets
// are divided into (§4.3: "buckets are divided uniformly into a small,
// fixed, number of partitions ... selected to provide a balance between
// I/O behaviour and fanout").
const DefaultPartitions = 8

// IndexAlt annotates a hash join with its alternate index-nested-loops
// strategy (§4.3): if, after reading the build input, the actual row count
// is low enough, the operator abandons the hash table and probes the index
// instead.
type IndexAlt struct {
	Table *table.Table
	Index *table.Index
	// Pred is the residual predicate applied to (left ⊕ right) rows.
	Pred Pred
}

// HashJoin builds a partitioned hash table on its Left input and probes
// with the Right input. Output rows are left ⊕ right. With LeftOuter,
// unmatched left rows are emitted null-padded (the preserved side is the
// build side).
//
// Adaptive behaviours (§4.3):
//   - After the build phase the operator knows the true build cardinality;
//     if an IndexAlt annotation is present and the count is below
//     INLMaxBuildRows, it switches to index nested loops.
//   - Build rows are stored in governor-accounted heap pages. When the
//     memory governor's soft limit is reached (or ReleaseMemory is
//     called), the partition with the most rows is evicted to the
//     temporary file, freeing the most memory for future processing.
//   - Spilled partitions are processed after the in-memory probe, in
//     blocks that respect the soft limit.
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []Expr
	LeftOuter           bool
	RightWidth          int // right-side column count, for null padding

	// Optimizer annotations.
	ExpectedBuildRows float64
	Alt               *IndexAlt
	INLMaxBuildRows   int64
	Partitions        int
	Depth             int // plan depth for governor release ordering

	// State.
	mode       string // "hash" or "inl"
	parts      []*joinPartition
	h          *heap.Heap
	matchSeen  []bool // per build row (heap order), for LeftOuter
	buildRows  int64
	emitQ      []Row
	emitPos    int   // consumed prefix of emitQ (index, not re-slice: O(1) pops)
	inBuf      Batch // reusable input batch for build and probe pulls
	probeDone  bool
	spillQueue []int // indexes of spilled partitions to post-process
	leftWidth  int
	registered bool
	ctx        *Ctx
	inl        *inlState
	// accounted tracks heap pages charged to the governor. The heap itself
	// is unaccounted (task=nil) because governor callbacks can re-enter
	// this operator; charging happens at safe points via syncMem.
	accounted  int
	spillCount int
	leftOpen   bool
	rightOpen  bool
}

type joinPartition struct {
	ht      map[uint64][]buildRef
	rows    int64
	spilled bool
	spill   run // build rows (with key hash prepended? no — re-evaluated)
	probe   run // probe rows destined for this partition
}

type buildRef struct {
	ref heap.RowRef
	idx int64 // build row ordinal (for match flags)
}

// Mode reports which strategy executed ("hash" or "inl"), for tests and
// EXPLAIN output.
func (j *HashJoin) Mode() string { return j.mode }

// SpilledPartitions reports how many partition evictions occurred during
// the most recent execution (the counter survives Close).
func (j *HashJoin) SpilledPartitions() int { return j.spillCount }

// MemoryPages implements mem.Consumer.
func (j *HashJoin) MemoryPages() int {
	if j.h == nil {
		return 0
	}
	return j.h.Pages()
}

// ReleaseMemory implements mem.Consumer: evict the largest in-memory
// partition. Because partition rows live interleaved in one heap, eviction
// copies survivors; the paper's engine pays a similar copy when reshaping
// heaps. Returns pages freed.
func (j *HashJoin) ReleaseMemory(want int) int {
	freed := 0
	for freed < want {
		vi := j.largestInMemoryPartition()
		if vi < 0 {
			break
		}
		n, err := j.evictPartition(vi)
		if err != nil || n == 0 {
			break
		}
		freed += n
	}
	if freed > 0 && j.ctx != nil && j.ctx.Task != nil {
		if freed > j.accounted {
			freed = j.accounted
		}
		j.accounted -= freed
		j.ctx.Task.Free(freed)
	}
	return freed
}

// syncMem charges newly grown heap pages to the governor. Charging may
// trigger a release callback into this operator, which is safe here: every
// build ref is already recorded in its partition map, so an eviction or
// heap rebuild migrates it correctly.
func (j *HashJoin) syncMem(ctx *Ctx) error {
	if ctx.Task == nil || j.h == nil {
		return nil
	}
	if delta := j.h.Pages() - j.accounted; delta > 0 {
		j.accounted += delta
		if err := ctx.Task.Alloc(delta); err != nil {
			return err
		}
	}
	return nil
}

func (j *HashJoin) firstInMemoryPartition() *joinPartition {
	for _, p := range j.parts {
		if p != nil && !p.spilled {
			return p
		}
	}
	return nil
}

func (j *HashJoin) largestInMemoryPartition() int {
	best, bestRows := -1, int64(0)
	for i, p := range j.parts {
		if p != nil && !p.spilled && p.rows > bestRows {
			best, bestRows = i, p.rows
		}
	}
	return best
}

func (j *HashJoin) Open(ctx *Ctx) error {
	if j.Partitions <= 0 {
		j.Partitions = DefaultPartitions
	}
	j.mode = "hash"
	j.parts = make([]*joinPartition, j.Partitions)
	for i := range j.parts {
		j.parts[i] = &joinPartition{ht: map[uint64][]buildRef{}}
	}
	j.h = heap.New(ctx.Pool, nil)
	j.accounted = 0
	j.matchSeen = j.matchSeen[:0]
	j.buildRows = 0
	j.emitQ = nil
	j.emitPos = 0
	j.inBuf.Reset()
	j.probeDone = false
	j.spillQueue = nil
	j.spillCount = 0
	j.ctx = ctx
	if ctx.Task != nil && !j.registered {
		ctx.Task.Register(j, j.Depth)
		j.registered = true
	}

	// Mark the child open BEFORE Open is attempted: a child whose Open
	// failed mid-way (e.g. statement cancellation during a nested build)
	// may hold pinned heap pages that only its Close releases, so Close
	// must reach it — the same close-even-if-Open-failed convention Drain
	// applies to the root.
	j.leftOpen = true
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	// Build phase, one input batch at a time.
	for {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if err := j.Left.NextBatch(ctx, &j.inBuf); err != nil {
			return err
		}
		if j.inBuf.Len() == 0 {
			break
		}
		for _, row := range j.inBuf.Rows {
			j.leftWidth = len(row)
			if err := j.addBuildRow(ctx, row); err != nil {
				return err
			}
		}
	}
	if err := j.Left.Close(ctx); err != nil {
		return err
	}
	j.leftOpen = false

	// Adaptive switch: the build cardinality is now exact. If the
	// optimizer annotated an alternate index strategy and the build turned
	// out small enough, use index nested loops instead of probing.
	if j.Alt != nil && j.buildRows <= j.INLMaxBuildRows && j.SpilledPartitions() == 0 {
		j.mode = "inl"
		return nil
	}
	j.rightOpen = true
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	return nil
}

func (j *HashJoin) addBuildRow(ctx *Ctx, row Row) error {
	keys, ok, err := evalKeys(j.LeftKeys, row)
	if err != nil {
		return err
	}
	idx := j.buildRows
	j.buildRows++
	j.matchSeen = append(j.matchSeen, false)
	if !ok {
		// A NULL join key never matches; only LeftOuter needs the row, and
		// it is emitted from the null-padding pass via matchSeen=false.
		if j.LeftOuter {
			p := j.firstInMemoryPartition()
			if p == nil {
				// Everything spilled: route through a spill run.
				pp := j.parts[0]
				w := runWriter{ctx: ctx, r: pp.spill}
				if err := w.add(row); err != nil {
					return err
				}
				pp.spill = w.r
				pp.rows++
				return nil
			}
			ref, err := j.h.AddRow(val.EncodeRow(row))
			if err != nil {
				return err
			}
			p.ht[nullKeyHash] = append(p.ht[nullKeyHash], buildRef{ref, idx})
			p.rows++
		}
		return nil
	}
	h := val.HashRow(keys)
	pi := int(h % uint64(j.Partitions))
	p := j.parts[pi]
	if p.spilled {
		w := runWriter{ctx: ctx, r: p.spill}
		if err := w.add(row); err != nil {
			return err
		}
		p.spill = w.r
		p.rows++
		return nil
	}
	ref, err := j.h.AddRow(val.EncodeRow(row))
	if err != nil {
		return err
	}
	p.ht[h] = append(p.ht[h], buildRef{ref, idx})
	p.rows++
	// While building the hash table on the smaller input, memory use is
	// monitored against the governor's soft limit; reaching it evicts the
	// partition with the most rows (via the governor's release callback).
	return j.syncMem(ctx)
}

// nullKeyHash segregates NULL-keyed preserved rows.
const nullKeyHash = ^uint64(0)

// evalKeys evaluates key expressions; ok=false when any key is NULL.
func evalKeys(exprs []Expr, row Row) ([]val.Value, bool, error) {
	out := make([]val.Value, len(exprs))
	for i, e := range exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			return nil, false, nil
		}
		out[i] = v
	}
	return out, true, nil
}

// evictPartition spills partition pi's build rows to the temp file and
// rebuilds the heap without them (the heap is append-only, so survivors
// are copied to a fresh heap). Returns pages freed.
func (j *HashJoin) evictPartition(pi int) (int, error) {
	ctx := j.ctx
	p := j.parts[pi]
	if p == nil || p.spilled {
		return 0, nil
	}
	before := j.h.Pages()
	// Write pi's rows out.
	w := runWriter{ctx: ctx}
	for _, refs := range p.ht {
		for _, br := range refs {
			b, err := j.h.Row(br.ref)
			if err != nil {
				return 0, err
			}
			row, err := val.DecodeRow(b)
			if err != nil {
				return 0, err
			}
			if err := w.add(row); err != nil {
				return 0, err
			}
		}
	}
	p.spill = w.finish()
	p.spilled = true
	j.spillCount++
	p.ht = nil

	// Rebuild the heap with the surviving partitions.
	nh := heap.New(ctx.Pool, nil)
	for qi, q := range j.parts {
		if qi == pi || q == nil || q.spilled {
			continue
		}
		for h, refs := range q.ht {
			for ri, br := range refs {
				b, err := j.h.Row(br.ref)
				if err != nil {
					return 0, err
				}
				nref, err := nh.AddRow(append([]byte(nil), b...))
				if err != nil {
					return 0, err
				}
				refs[ri] = buildRef{nref, br.idx}
			}
			q.ht[h] = refs
		}
	}
	j.h.Free(ctx.St)
	j.h = nh
	after := j.h.Pages()
	freed := before - after
	if freed < 0 {
		freed = 0
	}
	return freed, nil
}

// popEmitQ moves queued output rows into out (up to target) and truncates
// the queue once fully consumed.
func (j *HashJoin) popEmitQ(out *Batch, target int) {
	for j.emitPos < len(j.emitQ) && out.Len() < target {
		out.Add(j.emitQ[j.emitPos])
		j.emitPos++
	}
	if j.emitPos >= len(j.emitQ) {
		j.emitQ = j.emitQ[:0]
		j.emitPos = 0
	}
}

func (j *HashJoin) NextBatch(ctx *Ctx, out *Batch) error {
	if j.mode == "inl" {
		return j.nextINLBatch(ctx, out)
	}
	out.Reset()
	target := ctx.BatchSize()
	for {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		j.popEmitQ(out, target)
		if out.Len() >= target {
			return nil
		}
		if !j.probeDone {
			if err := j.Right.NextBatch(ctx, &j.inBuf); err != nil {
				return err
			}
			if j.inBuf.Len() == 0 {
				j.probeDone = true
				j.rightOpen = false
				if err := j.Right.Close(ctx); err != nil {
					return err
				}
				// Queue spilled partitions for post-processing.
				for i, p := range j.parts {
					if p.spilled {
						j.spillQueue = append(j.spillQueue, i)
					}
				}
				continue
			}
			ctx.ChargeRows(j.inBuf.Len())
			if err := j.probeBatch(ctx, j.inBuf.Rows); err != nil {
				return err
			}
			continue
		}
		if len(j.spillQueue) > 0 {
			pi := j.spillQueue[0]
			j.spillQueue = j.spillQueue[1:]
			if err := j.processSpilled(ctx, pi); err != nil {
				return err
			}
			continue
		}
		// Null-padding pass for LeftOuter.
		if j.LeftOuter {
			if err := j.emitUnmatched(ctx); err != nil {
				return err
			}
			j.LeftOuter = false // run once
			continue
		}
		return nil
	}
}

// probeBatch probes one batch of right rows against the in-memory
// partitions, deferring rows destined for spilled partitions so each
// partition takes one batched run append per input batch.
func (j *HashJoin) probeBatch(ctx *Ctx, rows []Row) error {
	var pending map[int][]Row // spilled-partition rows, flushed batch-wise
	for _, row := range rows {
		keys, ok, err := evalKeys(j.RightKeys, row)
		if err != nil {
			return err
		}
		if !ok {
			continue // NULL key matches nothing
		}
		h := val.HashRow(keys)
		pi := int(h % uint64(j.Partitions))
		p := j.parts[pi]
		if p.spilled {
			if pending == nil {
				pending = make(map[int][]Row)
			}
			pending[pi] = append(pending[pi], row)
			continue
		}
		for _, br := range p.ht[h] {
			b, err := j.h.Row(br.ref)
			if err != nil {
				return err
			}
			brow, err := val.DecodeRow(b)
			if err != nil {
				return err
			}
			if !keysEqual(j.LeftKeys, brow, keys) {
				continue
			}
			j.matchSeen[br.idx] = true
			j.emitQ = append(j.emitQ, concatRows(brow, row))
		}
	}
	for pi, rs := range pending {
		p := j.parts[pi]
		w := runWriter{ctx: ctx, r: p.probe}
		if err := w.addBatch(rs); err != nil {
			return err
		}
		p.probe = w.r
	}
	return nil
}

func keysEqual(leftKeys []Expr, brow Row, probeKeys []val.Value) bool {
	for i, e := range leftKeys {
		v, err := e.Eval(brow)
		if err != nil || v.IsNull() || val.Compare(v, probeKeys[i]) != 0 {
			return false
		}
	}
	return true
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// processSpilled joins one spilled partition pair in memory-bounded
// blocks, queueing results.
func (j *HashJoin) processSpilled(ctx *Ctx, pi int) error {
	p := j.parts[pi]
	soft := int64(1 << 30)
	if ctx.Task != nil {
		if s := ctx.Task.SoftLimitPages(); s > 0 {
			// Rows per block approximated by rows per page observed so far.
			soft = int64(s)
		}
	}
	// Load build rows in blocks of up to blockRows.
	var block []Row
	var blockIdx []int64
	rowsPerPage := int64(16)
	blockRows := soft * rowsPerPage
	if blockRows < 64 {
		blockRows = 64
	}

	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		ht := map[uint64][]int{}
		for i, brow := range block {
			keys, ok, err := evalKeys(j.LeftKeys, brow)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			ht[val.HashRow(keys)] = append(ht[val.HashRow(keys)], i)
		}
		err := p.probe.each(ctx, func(prow Row) error {
			keys, ok, err := evalKeys(j.RightKeys, prow)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			for _, bi := range ht[val.HashRow(keys)] {
				if keysEqual(j.LeftKeys, block[bi], keys) {
					j.matchSeen[blockIdx[bi]] = true
					j.emitQ = append(j.emitQ, concatRows(block[bi], prow))
				}
			}
			return nil
		})
		block = block[:0]
		blockIdx = blockIdx[:0]
		return err
	}

	// Spilled build rows lost their original ordinals; allocate fresh match
	// slots for them.
	err := p.spill.each(ctx, func(brow Row) error {
		idx := int64(len(j.matchSeen))
		j.matchSeen = append(j.matchSeen, false)
		block = append(block, brow)
		blockIdx = append(blockIdx, idx)
		if int64(len(block)) >= blockRows {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	// LeftOuter: spilled build rows whose slots stayed unmatched must be
	// padded. Their rows are still in p.spill; walk once more.
	if j.LeftOuter {
		base := int64(len(j.matchSeen)) - p.spill.rowsCount()
		i := int64(0)
		err := p.spill.each(ctx, func(brow Row) error {
			if !j.matchSeen[base+i] {
				j.emitQ = append(j.emitQ, padRight(brow, j.RightWidth))
			}
			i++
			return nil
		})
		if err != nil {
			return err
		}
		// Mark them emitted so the main unmatched pass skips them.
		for k := base; k < base+i; k++ {
			j.matchSeen[k] = true
		}
	}
	p.spill.free(ctx)
	p.probe.free(ctx)
	return nil
}

func padRight(brow Row, width int) Row {
	out := make(Row, 0, len(brow)+width)
	out = append(out, brow...)
	for i := 0; i < width; i++ {
		out = append(out, val.Null)
	}
	return out
}

// emitUnmatched queues null-padded unmatched in-memory build rows.
func (j *HashJoin) emitUnmatched(ctx *Ctx) error {
	for _, p := range j.parts {
		if p == nil || p.spilled || p.ht == nil {
			continue
		}
		for _, refs := range p.ht {
			for _, br := range refs {
				if br.idx < int64(len(j.matchSeen)) && j.matchSeen[br.idx] {
					continue
				}
				b, err := j.h.Row(br.ref)
				if err != nil {
					return err
				}
				brow, err := val.DecodeRow(b)
				if err != nil {
					return err
				}
				j.emitQ = append(j.emitQ, padRight(brow, j.RightWidth))
				if br.idx < int64(len(j.matchSeen)) {
					j.matchSeen[br.idx] = true
				}
			}
		}
	}
	return nil
}

// nextINLBatch drives the alternate index-nested-loops strategy: the build
// rows (already in the heap) become the outer side, probing the index.
func (j *HashJoin) nextINLBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	if j.inl == nil {
		j.inl = &inlState{}
		// Collect build rows from the heap in insertion order.
		for _, p := range j.parts {
			for _, refs := range p.ht {
				for _, br := range refs {
					b, err := j.h.Row(br.ref)
					if err != nil {
						return err
					}
					row, err := val.DecodeRow(b)
					if err != nil {
						return err
					}
					j.inl.outer = append(j.inl.outer, row)
				}
			}
		}
	}
	s := j.inl
	target := ctx.BatchSize()
	charged := 0
	defer func() { ctx.ChargeRows(charged) }()
	for {
		for s.qpos < len(s.queue) && out.Len() < target {
			out.Add(s.queue[s.qpos])
			s.qpos++
		}
		if s.qpos >= len(s.queue) {
			s.queue = s.queue[:0]
			s.qpos = 0
		}
		if out.Len() >= target || s.pos >= len(s.outer) {
			return nil
		}
		orow := s.outer[s.pos]
		s.pos++
		keys, ok, err := evalKeys(j.LeftKeys, orow)
		if err != nil {
			return err
		}
		matched := false
		if ok {
			key := val.EncodeKey(keys)
			it, err := j.Alt.Index.Tree.Seek(key)
			if err != nil {
				return err
			}
			for ; it.Valid() && hasPrefix(it.Key(), key); it.Next() {
				rid := table.RIDFromBytes(it.Value())
				irow, err := j.Alt.Table.Get(rid)
				if err != nil {
					it.Close()
					return err
				}
				o := concatRows(orow, irow)
				if j.Alt.Pred != nil {
					v, err := j.Alt.Pred.Test(o)
					if err != nil {
						it.Close()
						return err
					}
					if v != True {
						continue
					}
				}
				matched = true
				s.queue = append(s.queue, o)
			}
			if err := it.Err(); err != nil {
				it.Close()
				return err
			}
			it.Close()
		}
		if !matched && j.LeftOuter {
			s.queue = append(s.queue, padRight(orow, j.RightWidth))
		}
		charged++
	}
}

type inlState struct {
	outer []Row
	pos   int
	queue []Row
	qpos  int
}

func (j *HashJoin) Close(ctx *Ctx) error {
	if ctx.Task != nil && j.registered {
		ctx.Task.Unregister(j)
		j.registered = false
	}
	if ctx.Task != nil && j.accounted > 0 {
		ctx.Task.Free(j.accounted)
		j.accounted = 0
	}
	if j.h != nil {
		j.h.Free(ctx.St)
		j.h = nil
	}
	for _, p := range j.parts {
		if p != nil {
			p.spill.free(ctx)
			p.probe.free(ctx)
		}
	}
	j.parts = nil
	j.inl = nil
	var first error
	if j.leftOpen {
		first = j.Left.Close(ctx)
		j.leftOpen = false
	}
	if j.rightOpen {
		if err := j.Right.Close(ctx); err != nil && first == nil {
			first = err
		}
		j.rightOpen = false
	}
	return first
}

// NestedLoopJoin is the naive fallback join for non-equijoin predicates.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        Pred // applied to left ⊕ right; nil = cross product
	LeftOuter   bool
	RightWidth  int

	leftRows  []Row
	pos       int
	rightRows []Row
	rpos      int
	matched   bool
}

func (n *NestedLoopJoin) Open(ctx *Ctx) error {
	n.pos, n.rpos = 0, 0
	var err error
	n.leftRows, err = Drain(ctx, n.Left)
	if err != nil {
		return err
	}
	n.rightRows, err = Drain(ctx, n.Right)
	if err != nil {
		return err
	}
	n.matched = false
	return nil
}

func (n *NestedLoopJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	target := ctx.BatchSize()
	charged := 0
	defer func() { ctx.ChargeRows(charged) }()
	for out.Len() < target {
		// O(left×right) work per output batch: poll per left row.
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if n.pos >= len(n.leftRows) {
			return nil
		}
		lrow := n.leftRows[n.pos]
		if n.rpos == 0 {
			n.matched = false
		}
		for n.rpos < len(n.rightRows) && out.Len() < target {
			rrow := n.rightRows[n.rpos]
			n.rpos++
			o := concatRows(lrow, rrow)
			charged++
			if n.Pred != nil {
				v, err := n.Pred.Test(o)
				if err != nil {
					return err
				}
				if v != True {
					continue
				}
			}
			n.matched = true
			out.Add(o)
		}
		if n.rpos >= len(n.rightRows) {
			// Exhausted right side for this left row.
			if !n.matched && n.LeftOuter {
				if out.Len() >= target {
					return nil // pad on the next call; matched survives
				}
				out.Add(padRight(lrow, n.RightWidth))
			}
			n.pos++
			n.rpos = 0
		}
	}
	return nil
}

func (n *NestedLoopJoin) Close(ctx *Ctx) error {
	n.leftRows, n.rightRows = nil, nil
	return nil
}

// IndexNLJoin probes an index on the right table for each left row (the
// static index-nested-loops join method).
type IndexNLJoin struct {
	Left       Operator
	LeftKeys   []Expr
	Table      *table.Table
	Index      *table.Index
	Pred       Pred // residual on left ⊕ right
	LeftOuter  bool
	RightWidth int

	queue []Row
	qpos  int
	in    Batch
	ipos  int
	eof   bool
}

func (n *IndexNLJoin) Open(ctx *Ctx) error {
	n.queue, n.qpos = nil, 0
	n.in.Reset()
	n.ipos = 0
	n.eof = false
	return n.Left.Open(ctx)
}

func (n *IndexNLJoin) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	target := ctx.BatchSize()
	charged := 0
	defer func() { ctx.ChargeRows(charged) }()
	for {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		for n.qpos < len(n.queue) && out.Len() < target {
			out.Add(n.queue[n.qpos])
			n.qpos++
		}
		if n.qpos >= len(n.queue) {
			n.queue = n.queue[:0]
			n.qpos = 0
		}
		if out.Len() >= target {
			return nil
		}
		if n.ipos >= n.in.Len() {
			if n.eof {
				return nil
			}
			if err := n.Left.NextBatch(ctx, &n.in); err != nil {
				return err
			}
			n.ipos = 0
			if n.in.Len() == 0 {
				n.eof = true
				return nil
			}
		}
		lrow := n.in.Rows[n.ipos]
		n.ipos++
		charged++
		keys, ok, err := evalKeys(n.LeftKeys, lrow)
		if err != nil {
			return err
		}
		matched := false
		if ok {
			key := val.EncodeKey(keys)
			it, err := n.Index.Tree.Seek(key)
			if err != nil {
				return err
			}
			for ; it.Valid() && hasPrefix(it.Key(), key); it.Next() {
				rid := table.RIDFromBytes(it.Value())
				irow, err := n.Table.Get(rid)
				if err != nil {
					it.Close()
					return err
				}
				o := concatRows(lrow, irow)
				if n.Pred != nil {
					v, err := n.Pred.Test(o)
					if err != nil {
						it.Close()
						return err
					}
					if v != True {
						continue
					}
				}
				matched = true
				n.queue = append(n.queue, o)
			}
			it.Close()
		}
		if !matched && n.LeftOuter {
			n.queue = append(n.queue, padRight(lrow, n.RightWidth))
		}
	}
}

func (n *IndexNLJoin) Close(ctx *Ctx) error { return n.Left.Close(ctx) }
