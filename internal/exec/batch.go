package exec

import "anywheredb/internal/val"

// Batch execution protocol. Operators exchange vectors of rows instead of
// one row per virtual call: the per-row costs of the Volcano protocol (an
// interface call, a ChargeRows, a pair of clock samples per operator level)
// are amortized to per-batch, which is what lets the executor run as fast
// as the hardware allows once the buffer pool stops serializing the hit
// path. The batch size is not a constant: it is re-derived from the memory
// governor's soft limit and the current worker target between batches, so
// the §4.4 mid-query adaptations (memory squeeze, worker reduction) take
// effect at the next batch boundary.

const (
	// DefaultBatchSize is the target rows per batch with no governor
	// pressure and a single worker.
	DefaultBatchSize = 1024
	// MinBatchSize floors the adaptive size so heavy throttling degrades
	// to small batches, never to per-row dispatch.
	MinBatchSize = 16
	// batchRowsPerPage approximates how many value rows fit a page when
	// translating the governor's page quota into a row count.
	batchRowsPerPage = 64
)

// BatchSize reports the target number of rows per batch. It is cheap and
// deliberately re-evaluated on every NextBatch call: the governor's soft
// limit and the worker target can both move mid-query, and the batch
// boundary is the executor's adaptation point.
func (c *Ctx) BatchSize() int {
	if c.ForceBatchSize > 0 {
		return c.ForceBatchSize
	}
	n := DefaultBatchSize
	if c.Task != nil {
		if soft := c.Task.SoftLimitPages(); soft > 0 {
			// Keep the transient batch footprint around a quarter of the
			// statement's soft limit so batching never becomes the reason
			// a squeezed operator overshoots.
			if m := soft * batchRowsPerPage / 4; m < n {
				n = m
			}
		}
	}
	if w := c.Workers; w > 1 {
		// Smaller batches load-balance first-come-first-served workers.
		n /= w
	}
	if n < MinBatchSize {
		n = MinBatchSize
	}
	return n
}

// Batch is a reusable vector of rows. The container (the Rows slice) is
// owned by the caller of NextBatch and recycled between calls; the Row
// values inside it are immutable and remain valid until the producing
// operator is closed, so consumers may retain row headers but must not
// retain the Rows slice itself.
type Batch struct {
	Rows []Row
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Add appends one row.
func (b *Batch) Add(r Row) { b.Rows = append(b.Rows, r) }

// Len reports the number of rows.
func (b *Batch) Len() int { return len(b.Rows) }

// noteBatch records one produced batch in the engine telemetry (wired by
// core; nil in bare operator rigs).
func (c *Ctx) noteBatch(n int) {
	if c.Batches != nil {
		c.Batches.Inc()
	}
	if c.BatchRows != nil {
		c.BatchRows.Observe(int64(n))
	}
	if c.Span != nil {
		c.Span.AddBatches(1)
	}
}

// copyChunk moves up to ctx.BatchSize() rows from a materialized slice into
// out, advancing *pos. It is the shared emit path of every operator that
// buffers its whole result (scans over materialized pages, sort output,
// group-by output, recursive unions, parallel pipelines).
func copyChunk(ctx *Ctx, out *Batch, rows []Row, pos *int) {
	out.Reset()
	n := ctx.BatchSize()
	if rem := len(rows) - *pos; rem < n {
		n = rem
	}
	if n <= 0 {
		return
	}
	out.Rows = append(out.Rows, rows[*pos:*pos+n]...)
	*pos += n
}

// --- Vectored expression evaluation ---------------------------------------

// EvalBatch evaluates e over every row of in, appending results to dst and
// returning the extended slice. Col and Const — the overwhelmingly common
// leaves — are special-cased so a projection of plain columns costs a bulk
// copy instead of an interface call per row.
func EvalBatch(e Expr, in []Row, dst []val.Value) ([]val.Value, error) {
	switch x := e.(type) {
	case Col:
		for _, r := range in {
			if x.Idx < 0 || x.Idx >= len(r) {
				v, err := x.Eval(r) // produces the standard range error
				if err != nil {
					return dst, err
				}
				dst = append(dst, v)
				continue
			}
			dst = append(dst, r[x.Idx])
		}
		return dst, nil
	case Const:
		for range in {
			dst = append(dst, x.V)
		}
		return dst, nil
	}
	for _, r := range in {
		v, err := e.Eval(r)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// TestBatch evaluates p over every row of in, appending verdicts to dst.
// The dominant filter shape — a column compared against a constant — is
// vectorized: one comparison loop instead of three interface dispatches
// (Pred.Test, L.Eval, R.Eval) per row.
func TestBatch(p Pred, in []Row, dst []Bool3) ([]Bool3, error) {
	if c, ok := p.(Cmp); ok {
		if col, okL := c.L.(Col); okL {
			if k, okR := c.R.(Const); okR {
				if out, handled, err := testCmpColConst(c, col.Idx, k.V, in, dst); handled {
					return out, err
				}
			}
		}
	}
	for _, r := range in {
		v, err := p.Test(r)
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// testCmpColConst is TestBatch's fast path for col <op> const. Rows that
// cannot take it (column index out of range) fall back to Cmp.Test so the
// error text stays identical; unknown operators decline entirely.
func testCmpColConst(c Cmp, idx int, k val.Value, in []Row, dst []Bool3) ([]Bool3, bool, error) {
	switch c.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return dst, false, nil
	}
	for _, r := range in {
		if idx < 0 || idx >= len(r) || k.Kind == val.KNull {
			v, err := c.Test(r)
			if err != nil {
				return dst, true, err
			}
			dst = append(dst, v)
			continue
		}
		v := r[idx]
		if v.Kind == val.KNull {
			dst = append(dst, Unknown)
			continue
		}
		var n int
		if v.Kind == val.KInt && k.Kind == val.KInt {
			switch {
			case v.I < k.I:
				n = -1
			case v.I > k.I:
				n = 1
			}
		} else {
			n = val.Compare(v, k)
		}
		var b bool
		switch c.Op {
		case "=":
			b = n == 0
		case "<>":
			b = n != 0
		case "<":
			b = n < 0
		case "<=":
			b = n <= 0
		case ">":
			b = n > 0
		case ">=":
			b = n >= 0
		}
		if b {
			dst = append(dst, True)
		} else {
			dst = append(dst, False)
		}
	}
	return dst, true, nil
}

// --- Row adapter -----------------------------------------------------------

// RowIterator adapts a batch operator to row-at-a-time iteration for the
// few call sites that genuinely need one row per step (cursors over
// partial results, differential tests, row-path benchmarks). It is the
// only sanctioned way to drive an operator per-row; everything inside the
// engine exchanges batches.
type RowIterator struct {
	Op Operator

	buf Batch
	pos int
}

// Open opens the underlying operator.
func (it *RowIterator) Open(ctx *Ctx) error {
	it.buf.Reset()
	it.pos = 0
	return it.Op.Open(ctx)
}

// Next returns the next row, or (nil, nil) at end of input.
func (it *RowIterator) Next(ctx *Ctx) (Row, error) {
	for it.pos >= it.buf.Len() {
		if err := it.Op.NextBatch(ctx, &it.buf); err != nil {
			return nil, err
		}
		it.pos = 0
		if it.buf.Len() == 0 {
			return nil, nil
		}
	}
	r := it.buf.Rows[it.pos]
	it.pos++
	return r, nil
}

// Close closes the underlying operator.
func (it *RowIterator) Close(ctx *Ctx) error { return it.Op.Close(ctx) }

// Drain runs an operator to completion, returning all rows. If Open fails
// partway through a tree, Close still runs so operators release their
// buffer-pool pins and temp pages.
func Drain(ctx *Ctx, op Operator) ([]Row, error) {
	if err := op.Open(ctx); err != nil {
		op.Close(ctx)
		return nil, err
	}
	defer op.Close(ctx)
	var out []Row
	var b Batch
	for {
		if err := ctx.Interrupted(); err != nil {
			return nil, err
		}
		if err := op.NextBatch(ctx, &b); err != nil {
			return nil, err
		}
		if b.Len() == 0 {
			return out, nil
		}
		ctx.noteBatch(b.Len())
		out = append(out, b.Rows...)
	}
}
