package exec

import (
	"fmt"
	"sort"
	"testing"

	"anywheredb/internal/buffer"
	"anywheredb/internal/mem"
	"anywheredb/internal/store"
	"anywheredb/internal/table"
	"anywheredb/internal/val"
	"anywheredb/internal/vclock"
)

// testCtx builds a context over an in-memory store.
func testCtx(t testing.TB, frames int) (*Ctx, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	pool := buffer.New(st, 8, frames, frames*2)
	return &Ctx{Pool: pool, St: st, Clk: vclock.New(), Workers: 1}, st
}

// rowsOp materializes fixed rows.
func rowsOp(rows ...Row) *Materialized { return &Materialized{RowsData: rows} }

func intRow(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = val.NewInt(v)
	}
	return r
}

func mkTable(t testing.TB, ctx *Ctx, name string, n int, keyMod int64) *table.Table {
	t.Helper()
	tbl, err := table.Create(ctx.Pool, ctx.St, store.MainFile, uint64(len(name)+n), name, []table.Column{
		{Name: "id", Kind: val.KInt},
		{Name: "grp", Kind: val.KInt},
		{Name: "name", Kind: val.KStr},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		_, err := tbl.Insert(nil, Row{val.NewInt(int64(i)), val.NewInt(int64(i) % keyMod), val.NewStr(fmt.Sprintf("%s-%d", name, i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func drain(t testing.TB, ctx *Ctx, op Operator) []Row {
	t.Helper()
	rows, err := Drain(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFilterProjectLimit(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	input := rowsOp(intRow(1, 10), intRow(2, 20), intRow(3, 30), intRow(4, 40))
	var obsMatched, obsTested float64
	plan := &Limit{
		N: 2,
		Input: &Project{
			Exprs: []Expr{Col{1}, Arith{Op: '*', L: Col{0}, R: Const{val.NewInt(100)}}},
			Input: &Filter{
				Input: input,
				Pred:  Cmp{Op: ">", L: Col{0}, R: Const{val.NewInt(1)}},
				Obs:   func(m, n float64) { obsMatched, obsTested = m, n },
			},
		},
	}
	rows := drain(t, ctx, plan)
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	if rows[0][0].I != 20 || rows[0][1].I != 200 {
		t.Fatalf("row0 %v", rows[0])
	}
	// Observer fires on Close with what was actually tested.
	if obsTested == 0 || obsMatched == 0 {
		t.Fatalf("observer not called: %g/%g", obsMatched, obsTested)
	}
}

func TestTableScanAndIndexScan(t *testing.T) {
	ctx, _ := testCtx(t, 128)
	tbl := mkTable(t, ctx, "t", 500, 10)
	rows := drain(t, ctx, &TableScan{Table: tbl})
	if len(rows) != 500 {
		t.Fatalf("scan %d", len(rows))
	}
	ix, err := tbl.AddIndex(900, "by_id", []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	lo := val.EncodeKey([]val.Value{val.NewInt(100)})
	hi := val.EncodeKey([]val.Value{val.NewInt(110)})
	got := drain(t, ctx, &IndexScan{Table: tbl, Index: ix, Lo: lo, Hi: hi, HiInc: false})
	if len(got) != 10 {
		t.Fatalf("index range %d rows, want 10", len(got))
	}
	if got[0][0].I != 100 {
		t.Fatalf("first row %v", got[0])
	}
	// Inclusive upper bound.
	got = drain(t, ctx, &IndexScan{Table: tbl, Index: ix, Lo: lo, Hi: hi, HiInc: true})
	if len(got) != 11 {
		t.Fatalf("inclusive range %d rows, want 11", len(got))
	}
}

func TestHashJoinInner(t *testing.T) {
	ctx, _ := testCtx(t, 128)
	left := rowsOp(intRow(1, 100), intRow(2, 200), intRow(3, 300))
	right := rowsOp(intRow(10, 2), intRow(20, 2), intRow(30, 9))
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys:  []Expr{Col{0}},
		RightKeys: []Expr{Col{1}},
	}
	rows := drain(t, ctx, j)
	if len(rows) != 2 {
		t.Fatalf("join rows %d, want 2 (both right rows with key 2)", len(rows))
	}
	for _, r := range rows {
		if r[0].I != 2 || r[3].I != 2 {
			t.Fatalf("bad join row %v", r)
		}
	}
	if j.Mode() != "hash" {
		t.Fatalf("mode %s", j.Mode())
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	left := rowsOp(Row{val.Null, val.NewInt(1)}, intRow(5, 2))
	right := rowsOp(Row{val.Null, val.NewInt(3)}, intRow(5, 4))
	j := &HashJoin{Left: left, Right: right, LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}}}
	rows := drain(t, ctx, j)
	if len(rows) != 1 || rows[0][0].I != 5 {
		t.Fatalf("rows %v", rows)
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	left := rowsOp(intRow(1), intRow(2), Row{val.Null})
	right := rowsOp(intRow(2, 20))
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
		LeftOuter: true, RightWidth: 2,
	}
	rows := drain(t, ctx, j)
	if len(rows) != 3 {
		t.Fatalf("left outer rows %d, want 3", len(rows))
	}
	matched, padded := 0, 0
	for _, r := range rows {
		if len(r) != 3 {
			t.Fatalf("row width %d", len(r))
		}
		if r[1].IsNull() {
			padded++
		} else {
			matched++
		}
	}
	if matched != 1 || padded != 2 {
		t.Fatalf("matched %d padded %d", matched, padded)
	}
}

func TestHashJoinSpillCorrectness(t *testing.T) {
	// A tiny soft limit forces partition eviction; results must match the
	// unspilled join exactly.
	ctx, _ := testCtx(t, 256)
	gov := mem.NewGovernor(func() int { return 10000 }, func() int { return 16 }, 4) // soft=4 pages
	task := gov.Begin()
	defer task.Finish()
	ctx.Task = task

	var lrows, rrows []Row
	for i := 0; i < 2000; i++ {
		lrows = append(lrows, intRow(int64(i%500), int64(i)))
	}
	for i := 0; i < 1000; i++ {
		rrows = append(rrows, intRow(int64(i%500), int64(i)))
	}
	j := &HashJoin{
		Left: &Materialized{RowsData: lrows}, Right: &Materialized{RowsData: rrows},
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
	}
	rows := drain(t, ctx, j)
	if j.SpilledPartitions() == 0 {
		t.Fatal("expected partition eviction under a 4-page soft limit")
	}
	// Expected cardinality: each key 0..499 appears 4x left and 2x right.
	if len(rows) != 500*4*2 {
		t.Fatalf("spilled join rows %d, want %d", len(rows), 500*4*2)
	}
}

func TestHashJoinSpillLeftOuter(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	gov := mem.NewGovernor(func() int { return 10000 }, func() int { return 8 }, 4) // soft=2 pages
	task := gov.Begin()
	defer task.Finish()
	ctx.Task = task

	var lrows []Row
	for i := 0; i < 1500; i++ {
		lrows = append(lrows, intRow(int64(i), int64(i)))
	}
	// Right matches only even keys < 1000.
	var rrows []Row
	for i := 0; i < 1000; i += 2 {
		rrows = append(rrows, intRow(int64(i)))
	}
	j := &HashJoin{
		Left: &Materialized{RowsData: lrows}, Right: &Materialized{RowsData: rrows},
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
		LeftOuter: true, RightWidth: 1,
	}
	rows := drain(t, ctx, j)
	if len(rows) != 1500 {
		t.Fatalf("left outer spilled rows %d, want 1500", len(rows))
	}
	padded := 0
	for _, r := range rows {
		if r[2].IsNull() {
			padded++
		}
	}
	if padded != 1000 {
		t.Fatalf("padded %d, want 1000 (odd keys + >=1000)", padded)
	}
}

func TestHashJoinINLSwitch(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	inner := mkTable(t, ctx, "inner", 1000, 1000)
	ix, err := inner.AddIndex(901, "by_id", []int{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer expected many build rows, but only 3 arrive: the
	// operator must switch to index nested loops.
	left := rowsOp(intRow(5), intRow(7), intRow(9999))
	j := &HashJoin{
		Left:     left,
		Right:    &TableScan{Table: inner}, // never opened if INL engages
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
		ExpectedBuildRows: 10000,
		INLMaxBuildRows:   10,
		Alt:               &IndexAlt{Table: inner, Index: ix},
	}
	rows := drain(t, ctx, j)
	if j.Mode() != "inl" {
		t.Fatalf("mode %s, want inl", j.Mode())
	}
	if len(rows) != 2 {
		t.Fatalf("INL rows %d, want 2 (key 9999 misses)", len(rows))
	}

	// With a build larger than the threshold the switch must NOT happen.
	var many []Row
	for i := 0; i < 100; i++ {
		many = append(many, intRow(int64(i)))
	}
	j2 := &HashJoin{
		Left:     &Materialized{RowsData: many},
		Right:    &TableScan{Table: inner},
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
		INLMaxBuildRows: 10,
		Alt:             &IndexAlt{Table: inner, Index: ix},
	}
	rows2 := drain(t, ctx, j2)
	if j2.Mode() != "hash" {
		t.Fatalf("mode %s, want hash", j2.Mode())
	}
	if len(rows2) != 100 {
		t.Fatalf("hash rows %d", len(rows2))
	}
}

func TestHashJoinINLLeftOuter(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	inner := mkTable(t, ctx, "inner2", 100, 100)
	ix, _ := inner.AddIndex(902, "by_id2", []int{0}, false)
	left := rowsOp(intRow(5), intRow(5000))
	j := &HashJoin{
		Left: left, Right: &TableScan{Table: inner},
		LeftKeys: []Expr{Col{0}}, RightKeys: []Expr{Col{0}},
		LeftOuter: true, RightWidth: 3,
		INLMaxBuildRows: 10,
		Alt:             &IndexAlt{Table: inner, Index: ix},
	}
	rows := drain(t, ctx, j)
	if j.Mode() != "inl" || len(rows) != 2 {
		t.Fatalf("mode=%s rows=%d", j.Mode(), len(rows))
	}
	foundPad := false
	for _, r := range rows {
		if r[0].I == 5000 && r[1].IsNull() {
			foundPad = true
		}
	}
	if !foundPad {
		t.Fatal("unmatched outer row not padded in INL mode")
	}
}

func TestNestedLoopJoin(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	left := rowsOp(intRow(1), intRow(2), intRow(3))
	right := rowsOp(intRow(2), intRow(3), intRow(4))
	// Non-equijoin: l.a < r.a
	j := &NestedLoopJoin{
		Left: left, Right: right,
		Pred: Cmp{Op: "<", L: Col{0}, R: Col{1}},
	}
	rows := drain(t, ctx, j)
	if len(rows) != 6 {
		t.Fatalf("rows %d, want 6", len(rows))
	}
	// Left outer with impossible predicate pads everything.
	j2 := &NestedLoopJoin{
		Left: rowsOp(intRow(1), intRow(2)), Right: rowsOp(intRow(9)),
		Pred:      Cmp{Op: ">", L: Col{0}, R: Col{1}},
		LeftOuter: true, RightWidth: 1,
	}
	rows2 := drain(t, ctx, j2)
	if len(rows2) != 2 || !rows2[0][1].IsNull() {
		t.Fatalf("outer NL rows %v", rows2)
	}
}

func TestIndexNLJoin(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	inner := mkTable(t, ctx, "i3", 200, 20)
	ix, _ := inner.AddIndex(903, "by_grp", []int{1}, false)
	// For each left row, find inner rows with grp = left key.
	left := rowsOp(intRow(3), intRow(19))
	j := &IndexNLJoin{
		Left: left, LeftKeys: []Expr{Col{0}},
		Table: inner, Index: ix,
	}
	rows := drain(t, ctx, j)
	if len(rows) != 20 { // 10 rows per grp value
		t.Fatalf("rows %d, want 20", len(rows))
	}
}

func TestHashGroupBy(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	var in []Row
	for i := 0; i < 100; i++ {
		in = append(in, intRow(int64(i%4), int64(i)))
	}
	g := &HashGroupBy{
		Input: &Materialized{RowsData: in},
		Keys:  []Expr{Col{0}},
		Aggs: []AggSpec{
			{Fn: AggCountStar},
			{Fn: AggSum, Arg: Col{1}},
			{Fn: AggMin, Arg: Col{1}},
			{Fn: AggMax, Arg: Col{1}},
			{Fn: AggAvg, Arg: Col{1}},
		},
	}
	rows := drain(t, ctx, g)
	if len(rows) != 4 {
		t.Fatalf("groups %d", len(rows))
	}
	for _, r := range rows {
		k := r[0].I
		if r[1].I != 25 {
			t.Fatalf("count %v", r)
		}
		if r[3].I != k || r[4].I != 96+k {
			t.Fatalf("min/max %v", r)
		}
	}
	if g.FellBack() {
		t.Fatal("no fallback expected")
	}
}

func TestHashGroupByLowMemoryFallback(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	var in []Row
	for i := 0; i < 5000; i++ {
		in = append(in, intRow(int64(i%1000), 1))
	}
	g := &HashGroupBy{
		Input:             &Materialized{RowsData: in},
		Keys:              []Expr{Col{0}},
		Aggs:              []AggSpec{{Fn: AggCountStar}, {Fn: AggSum, Arg: Col{1}}},
		MaxGroupsInMemory: 50,
	}
	rows := drain(t, ctx, g)
	if !g.FellBack() {
		t.Fatal("fallback should have engaged")
	}
	if len(rows) != 1000 {
		t.Fatalf("groups %d, want 1000", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 5 || r[2].I != 5 {
			t.Fatalf("merged partial groups wrong: %v", r)
		}
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	g := &HashGroupBy{
		Input: rowsOp(),
		Aggs:  []AggSpec{{Fn: AggCountStar}, {Fn: AggSum, Arg: Col{0}}},
	}
	rows := drain(t, ctx, g)
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Fatalf("global agg on empty: %v", rows)
	}
}

func TestCountDistinct(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	in := []Row{intRow(1), intRow(1), intRow(2), intRow(2), intRow(3)}
	g := &HashGroupBy{
		Input: &Materialized{RowsData: in},
		Aggs:  []AggSpec{{Fn: AggCount, Arg: Col{0}, Distinct: true}},
	}
	rows := drain(t, ctx, g)
	if rows[0][0].I != 3 {
		t.Fatalf("count distinct %v", rows[0])
	}
}

func TestAggregatesIgnoreNulls(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	in := []Row{{val.NewInt(1)}, {val.Null}, {val.NewInt(3)}}
	g := &HashGroupBy{
		Input: &Materialized{RowsData: in},
		Aggs: []AggSpec{
			{Fn: AggCount, Arg: Col{0}},
			{Fn: AggSum, Arg: Col{0}},
			{Fn: AggAvg, Arg: Col{0}},
		},
	}
	rows := drain(t, ctx, g)
	if rows[0][0].I != 2 || rows[0][1].I != 4 || rows[0][2].F != 2 {
		t.Fatalf("null handling %v", rows[0])
	}
}

func TestSortInMemoryAndExternal(t *testing.T) {
	ctx, _ := testCtx(t, 256)
	var in []Row
	for i := 0; i < 3000; i++ {
		in = append(in, intRow(int64((i*7919)%3000), int64(i)))
	}
	s := &Sort{
		Input: &Materialized{RowsData: in},
		Keys:  []SortKey{{Expr: Col{0}}},
	}
	rows := drain(t, ctx, s)
	if s.Spilled() {
		t.Fatal("unlimited sort should not spill")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0].I < rows[i-1][0].I {
			t.Fatal("not sorted")
		}
	}

	ext := &Sort{
		Input:           &Materialized{RowsData: in},
		Keys:            []SortKey{{Expr: Col{0}}, {Expr: Col{1}, Desc: true}},
		MaxRowsInMemory: 100,
	}
	rows2 := drain(t, ctx, ext)
	if !ext.Spilled() {
		t.Fatal("external sort should spill")
	}
	if len(rows2) != 3000 {
		t.Fatalf("external rows %d", len(rows2))
	}
	for i := 1; i < len(rows2); i++ {
		a, b := rows2[i-1], rows2[i]
		if a[0].I > b[0].I {
			t.Fatal("external not sorted")
		}
		if a[0].I == b[0].I && a[1].I < b[1].I {
			t.Fatal("secondary desc key broken")
		}
	}
}

func TestHashDistinct(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	in := []Row{intRow(1, 2), intRow(1, 2), intRow(1, 3), {val.Null, val.Null}, {val.Null, val.Null}}
	d := &HashDistinct{Input: &Materialized{RowsData: in}}
	rows := drain(t, ctx, d)
	if len(rows) != 3 {
		t.Fatalf("distinct %d rows, want 3", len(rows))
	}
}

func TestRecursiveUnion(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	// Transitive closure of i -> i+1 up to 10.
	r := &RecursiveUnion{
		Base: rowsOp(intRow(1)),
		Recursive: func(prev *Materialized) Operator {
			return &Filter{
				Input: &Project{
					Exprs: []Expr{Arith{Op: '+', L: Col{0}, R: Const{val.NewInt(1)}}},
					Input: prev,
				},
				Pred: Cmp{Op: "<=", L: Col{0}, R: Const{val.NewInt(10)}},
			}
		},
	}
	rows := drain(t, ctx, r)
	if len(rows) != 10 {
		t.Fatalf("recursive rows %d, want 10", len(rows))
	}
	if r.Iterations() < 9 {
		t.Fatalf("iterations %d", r.Iterations())
	}
}

func TestRecursiveUnionStrategySwitch(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	r := &RecursiveUnion{
		Base: rowsOp(intRow(0)),
		Recursive: func(prev *Materialized) Operator {
			return &Filter{
				Input: &Project{
					Exprs: []Expr{Arith{Op: '+', L: Col{0}, R: Const{val.NewInt(1)}}},
					Input: prev,
				},
				Pred: Cmp{Op: "<", L: Col{0}, R: Const{val.NewInt(100)}},
			}
		},
		DedupLimit: 10, // force the per-iteration strategy switch
	}
	rows := drain(t, ctx, r)
	if !r.SwitchedStrategy() {
		t.Fatal("strategy switch expected")
	}
	if len(rows) != 100 {
		t.Fatalf("rows %d", len(rows))
	}
}

func TestParallelPipeline(t *testing.T) {
	ctx, _ := testCtx(t, 128)
	ctx.Workers = 4
	var src, b1, b2 []Row
	for i := 0; i < 1000; i++ {
		src = append(src, intRow(int64(i), int64(i%100)))
	}
	for i := 0; i < 100; i++ {
		b1 = append(b1, intRow(int64(i), int64(i%10)))
	}
	for i := 0; i < 10; i++ {
		b2 = append(b2, intRow(int64(i), int64(i*1000)))
	}
	p := &ParallelPipeline{
		Source: &Materialized{RowsData: src},
		Joins: []PipeJoin{
			{Build: &Materialized{RowsData: b1}, BuildKeys: []Expr{Col{0}}, ProbeKeys: []Expr{Col{1}}, UseBloom: true},
			{Build: &Materialized{RowsData: b2}, BuildKeys: []Expr{Col{0}}, ProbeKeys: []Expr{Col{3}}},
		},
		BuildParallel: true,
	}
	rows := drain(t, ctx, p)
	if len(rows) != 1000 {
		t.Fatalf("pipeline rows %d, want 1000", len(rows))
	}
	// Verify a sample row's join chain: src.grp = b1.id, b1.grp = b2.id.
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].I < rows[j][0].I })
	r := rows[123]
	if r[1].I != r[2].I || r[3].I != r[4].I || r[5].I != r[4].I*1000 {
		t.Fatalf("join chain broken: %v", r)
	}
}

func TestParallelPipelineWorkerReduction(t *testing.T) {
	ctx, _ := testCtx(t, 128)
	ctx.Workers = 8
	var src, b []Row
	for i := 0; i < 500; i++ {
		src = append(src, intRow(int64(i%50)))
	}
	for i := 0; i < 50; i++ {
		b = append(b, intRow(int64(i)))
	}
	p := &ParallelPipeline{
		Source: &Materialized{RowsData: src},
		Joins:  []PipeJoin{{Build: &Materialized{RowsData: b}, BuildKeys: []Expr{Col{0}}, ProbeKeys: []Expr{Col{0}}}},
	}
	p.SetWorkers(1) // reduce before open: serial execution, same answer
	rows := drain(t, ctx, p)
	if len(rows) != 500 {
		t.Fatalf("reduced-worker rows %d", len(rows))
	}
}

func TestUnionAllAndValues(t *testing.T) {
	ctx, _ := testCtx(t, 64)
	u := &UnionAll{Inputs: []Operator{
		rowsOp(intRow(1)),
		rowsOp(),
		rowsOp(intRow(2), intRow(3)),
	}}
	rows := drain(t, ctx, u)
	if len(rows) != 3 {
		t.Fatalf("union rows %d", len(rows))
	}
	v := &Values{Rows: [][]Expr{{Const{val.NewInt(7)}, Const{val.NewStr("x")}}}}
	rows = drain(t, ctx, v)
	if len(rows) != 1 || rows[0][0].I != 7 {
		t.Fatalf("values %v", rows)
	}
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want val.Value
	}{
		{Arith{Op: '+', L: Const{val.NewInt(2)}, R: Const{val.NewInt(3)}}, val.NewInt(5)},
		{Arith{Op: '/', L: Const{val.NewInt(7)}, R: Const{val.NewInt(2)}}, val.NewDouble(3.5)},
		{Arith{Op: '/', L: Const{val.NewInt(8)}, R: Const{val.NewInt(2)}}, val.NewInt(4)},
		{Arith{Op: '%', L: Const{val.NewInt(7)}, R: Const{val.NewInt(3)}}, val.NewInt(1)},
		{Arith{Op: '*', L: Const{val.NewDouble(1.5)}, R: Const{val.NewInt(4)}}, val.NewDouble(6)},
		{Neg{Const{val.NewInt(5)}}, val.NewInt(-5)},
		{Arith{Op: '+', L: Const{val.Null}, R: Const{val.NewInt(1)}}, val.Null},
	}
	for i, c := range cases {
		got, err := c.e.Eval(nil)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Kind != c.want.Kind || (got.Kind != val.KNull && val.Compare(got, c.want) != 0) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
	}
	if _, err := (Arith{Op: '/', L: Const{val.NewInt(1)}, R: Const{val.NewInt(0)}}).Eval(nil); err == nil {
		t.Fatal("division by zero should error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Const{val.Null}
	one := Const{val.NewInt(1)}
	cmpNull := Cmp{Op: "=", L: null, R: one}

	if v, _ := cmpNull.Test(nil); v != Unknown {
		t.Fatal("NULL comparison must be Unknown")
	}
	if v, _ := (And{cmpNull, Cmp{Op: "=", L: one, R: one}}).Test(nil); v != Unknown {
		t.Fatal("Unknown AND True = Unknown")
	}
	f := Cmp{Op: "<>", L: one, R: one}
	if v, _ := (And{cmpNull, f}).Test(nil); v != False {
		t.Fatal("Unknown AND False = False")
	}
	if v, _ := (Or{cmpNull, Cmp{Op: "=", L: one, R: one}}).Test(nil); v != True {
		t.Fatal("Unknown OR True = True")
	}
	if v, _ := (Or{cmpNull, f}).Test(nil); v != Unknown {
		t.Fatal("Unknown OR False = Unknown")
	}
	if v, _ := (Not{cmpNull}).Test(nil); v != Unknown {
		t.Fatal("NOT Unknown = Unknown")
	}
	if v, _ := (IsNullPred{E: null}).Test(nil); v != True {
		t.Fatal("NULL IS NULL")
	}
	if v, _ := (IsNullPred{E: one, Neg: true}).Test(nil); v != True {
		t.Fatal("1 IS NOT NULL")
	}
}

func TestPredicates(t *testing.T) {
	row := Row{val.NewInt(5), val.NewStr("hello world")}
	if v, _ := (BetweenPred{E: Col{0}, Lo: Const{val.NewInt(1)}, Hi: Const{val.NewInt(10)}}).Test(row); v != True {
		t.Fatal("between")
	}
	if v, _ := (BetweenPred{E: Col{0}, Lo: Const{val.NewInt(6)}, Hi: Const{val.NewInt(10)}, Neg: true}).Test(row); v != True {
		t.Fatal("not between")
	}
	if v, _ := (LikePred{E: Col{1}, Pattern: Const{val.NewStr("%world%")}}).Test(row); v != True {
		t.Fatal("like")
	}
	if v, _ := (InListPred{E: Col{0}, List: []Expr{Const{val.NewInt(4)}, Const{val.NewInt(5)}}}).Test(row); v != True {
		t.Fatal("in")
	}
	// NOT IN with NULL in list and no match is Unknown.
	if v, _ := (InListPred{E: Col{0}, List: []Expr{Const{val.Null}, Const{val.NewInt(9)}}, Neg: true}).Test(row); v != Unknown {
		t.Fatal("not in with null")
	}
}
