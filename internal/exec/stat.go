package exec

import "fmt"

// NodeStats accrues one operator's actual execution statistics: how often
// its Next was invoked, how many rows it returned, the inclusive virtual
// time spent in its subtree, and its memory high-water mark. These are the
// per-node actuals that EXPLAIN ANALYZE prints next to the optimizer's
// estimates, making Eq. 3 rank-preservation errors visible per query.
type NodeStats struct {
	Invocations  int64 // NextBatch calls (including the EOF call)
	Rows         int64 // rows returned
	Batches      int64 // non-empty batches returned
	VTimeMicros  int64 // inclusive virtual µs in Open+NextBatch+Close
	MemPeakPages int   // high-water MemoryPages() for mem.Consumer operators
}

// memSized is the probe for an operator's memory footprint (the subset of
// mem.Consumer we can read without importing mem).
type memSized interface{ MemoryPages() int }

// Stat wraps an operator and accrues NodeStats as the tree runs. All
// operator iteration is single-threaded (ParallelPipeline drains its
// children before fanning out workers), so the fields are plain integers —
// instrumentation costs two clock reads and a few adds per batch, not per
// row.
type Stat struct {
	Inner Operator
	S     NodeStats
}

func (s *Stat) Open(ctx *Ctx) error {
	start := s.now(ctx)
	err := s.Inner.Open(ctx)
	s.S.VTimeMicros += s.now(ctx) - start
	s.sampleMem()
	return err
}

func (s *Stat) NextBatch(ctx *Ctx, out *Batch) error {
	start := s.now(ctx)
	err := s.Inner.NextBatch(ctx, out)
	s.S.VTimeMicros += s.now(ctx) - start
	s.S.Invocations++
	if n := out.Len(); n > 0 {
		s.S.Rows += int64(n)
		s.S.Batches++
	} else {
		s.sampleMem() // end of stream: catch the build-phase high water
	}
	return err
}

func (s *Stat) Close(ctx *Ctx) error {
	start := s.now(ctx)
	err := s.Inner.Close(ctx)
	s.S.VTimeMicros += s.now(ctx) - start
	return err
}

func (s *Stat) now(ctx *Ctx) int64 {
	if ctx.Clk == nil {
		return 0
	}
	return int64(ctx.Clk.Now())
}

func (s *Stat) sampleMem() {
	if m, ok := s.Inner.(memSized); ok {
		if p := m.MemoryPages(); p > s.S.MemPeakPages {
			s.S.MemPeakPages = p
		}
	}
}

// Unwrap returns the operator inside a Stat wrapper (or op itself).
func Unwrap(op Operator) Operator {
	if s, ok := op.(*Stat); ok {
		return s.Inner
	}
	return op
}

// StatsOf returns the accrued stats if op is instrumented.
func StatsOf(op Operator) (*NodeStats, bool) {
	if s, ok := op.(*Stat); ok {
		return &s.S, true
	}
	return nil, false
}

// Instrument wraps op and every reachable child in Stat nodes, so the
// whole plan tree accrues per-node actuals. It returns the wrapped root.
// The RecursiveUnion closure child is rebuilt per iteration and cannot be
// wrapped from outside; only its Base is instrumented.
func Instrument(op Operator) Operator {
	if op == nil {
		return nil
	}
	if _, ok := op.(*Stat); ok {
		return op // already instrumented
	}
	switch x := op.(type) {
	case *Filter:
		x.Input = Instrument(x.Input)
	case *Project:
		x.Input = Instrument(x.Input)
	case *Limit:
		x.Input = Instrument(x.Input)
	case *Sort:
		x.Input = Instrument(x.Input)
	case *HashGroupBy:
		x.Input = Instrument(x.Input)
	case *HashDistinct:
		x.Input = Instrument(x.Input)
	case *HashJoin:
		x.Left = Instrument(x.Left)
		x.Right = Instrument(x.Right)
	case *NestedLoopJoin:
		x.Left = Instrument(x.Left)
		x.Right = Instrument(x.Right)
	case *IndexNLJoin:
		x.Left = Instrument(x.Left)
	case *UnionAll:
		for i := range x.Inputs {
			x.Inputs[i] = Instrument(x.Inputs[i])
		}
	case *RecursiveUnion:
		x.Base = Instrument(x.Base)
	case *ParallelPipeline:
		x.Source = Instrument(x.Source)
		for i := range x.Joins {
			x.Joins[i].Build = Instrument(x.Joins[i].Build)
		}
	}
	return &Stat{Inner: op}
}

// Children returns the direct children of op (after unwrapping Stat), in
// plan order. Leaves return nil.
func Children(op Operator) []Operator {
	switch x := Unwrap(op).(type) {
	case *Filter:
		return []Operator{x.Input}
	case *Project:
		return []Operator{x.Input}
	case *Limit:
		return []Operator{x.Input}
	case *Sort:
		return []Operator{x.Input}
	case *HashGroupBy:
		return []Operator{x.Input}
	case *HashDistinct:
		return []Operator{x.Input}
	case *HashJoin:
		return []Operator{x.Left, x.Right}
	case *NestedLoopJoin:
		return []Operator{x.Left, x.Right}
	case *IndexNLJoin:
		return []Operator{x.Left}
	case *UnionAll:
		return append([]Operator(nil), x.Inputs...)
	case *RecursiveUnion:
		return []Operator{x.Base}
	case *ParallelPipeline:
		out := []Operator{x.Source}
		for i := range x.Joins {
			out = append(out, x.Joins[i].Build)
		}
		return out
	}
	return nil
}

// Describe returns a one-line label for op (after unwrapping Stat):
// operator name plus its table/index when it has one.
func Describe(op Operator) string {
	switch x := Unwrap(op).(type) {
	case *TableScan:
		if x.Table.SegmentCount() > 0 && !x.NoColumnar {
			if x.ZoneOp != "" && x.ZoneCol >= 0 && x.ZoneCol < len(x.Table.Columns) {
				return fmt.Sprintf("TableScan(%s columnar zone:%s%s%s)",
					x.Table.Name, x.Table.Columns[x.ZoneCol].Name, x.ZoneOp, x.ZoneConst)
			}
			return fmt.Sprintf("TableScan(%s columnar)", x.Table.Name)
		}
		return fmt.Sprintf("TableScan(%s)", x.Table.Name)
	case *IndexScan:
		return fmt.Sprintf("IndexScan(%s.%s)", x.Table.Name, x.Index.Name)
	case *Filter:
		return "Filter"
	case *Project:
		return "Project"
	case *Limit:
		return fmt.Sprintf("Limit(%d)", x.N)
	case *Sort:
		return "Sort"
	case *HashGroupBy:
		return "HashGroupBy"
	case *HashDistinct:
		return "HashDistinct"
	case *HashJoin:
		if x.mode == "inl" {
			return "HashJoin[->INL]"
		}
		return "HashJoin"
	case *NestedLoopJoin:
		return "NestedLoopJoin"
	case *IndexNLJoin:
		return fmt.Sprintf("IndexNLJoin(%s.%s)", x.Table.Name, x.Index.Name)
	case *UnionAll:
		return "UnionAll"
	case *RecursiveUnion:
		return "RecursiveUnion"
	case *ParallelPipeline:
		return "ParallelPipeline"
	case *Values:
		return "Values"
	case *Materialized:
		return "Materialized"
	}
	return fmt.Sprintf("%T", Unwrap(op))
}
