package exec

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// This guard parses the exec package source and verifies that the
// child-walking type switches in Instrument, Children, and Describe stay
// exhaustive as operators are added: a new Operator implementation with an
// Operator-typed field (directly, through a pointer/slice, or inside an
// embedded struct like PipeJoin) that is missing from Instrument would
// silently lose its subtree's EXPLAIN ANALYZE actuals.

type execPkgInfo struct {
	structs map[string]*ast.StructType
	methods map[string]map[string]bool // type name -> method set
	cases   map[string]map[string]bool // func name -> case type names
}

func parseExecPkg(t *testing.T) *execPkgInfo {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["exec"]
	if !ok {
		t.Fatalf("package exec not found (got %v)", pkgs)
	}

	info := &execPkgInfo{
		structs: map[string]*ast.StructType{},
		methods: map[string]map[string]bool{},
		cases:   map[string]map[string]bool{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						info.structs[ts.Name.Name] = st
					}
				}
			case *ast.FuncDecl:
				if d.Recv != nil && len(d.Recv.List) == 1 {
					if name := recvTypeName(d.Recv.List[0].Type); name != "" {
						m := info.methods[name]
						if m == nil {
							m = map[string]bool{}
							info.methods[name] = m
						}
						m[d.Name.Name] = true
					}
					continue
				}
				switch d.Name.Name {
				case "Instrument", "Children", "Describe":
					info.cases[d.Name.Name] = collectSwitchCases(d)
				}
			}
		}
	}
	return info
}

func recvTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// collectSwitchCases gathers the *T type names of every case clause in the
// (single) type switch inside fn.
func collectSwitchCases(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if name := recvTypeName(e); name != "" {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// implementsOperator reports whether *T has the full batch protocol.
func (p *execPkgInfo) implementsOperator(name string) bool {
	m := p.methods[name]
	return m["Open"] && m["NextBatch"] && m["Close"]
}

// bearsOperator reports whether a value of the named struct type holds
// child operators reachable through its fields (transitively through named
// structs, pointers, and slices; function types are opaque — a closure
// cannot be instrumented from outside).
func (p *execPkgInfo) bearsOperator(name string, seen map[string]bool) bool {
	if seen[name] {
		return false
	}
	seen[name] = true
	st, ok := p.structs[name]
	if !ok {
		return false
	}
	for _, f := range st.Fields.List {
		if p.typeBearsOperator(f.Type, seen) {
			return true
		}
	}
	return false
}

func (p *execPkgInfo) typeBearsOperator(e ast.Expr, seen map[string]bool) bool {
	switch t := e.(type) {
	case *ast.Ident:
		if t.Name == "Operator" {
			return true
		}
		return p.bearsOperator(t.Name, seen)
	case *ast.StarExpr:
		return p.typeBearsOperator(t.X, seen)
	case *ast.ArrayType:
		return p.typeBearsOperator(t.Elt, seen)
	case *ast.MapType:
		return p.typeBearsOperator(t.Value, seen)
	}
	return false
}

func TestInstrumentSwitchExhaustive(t *testing.T) {
	info := parseExecPkg(t)
	for _, fn := range []string{"Instrument", "Children", "Describe"} {
		if len(info.cases[fn]) == 0 {
			t.Fatalf("no type-switch cases found in %s", fn)
		}
	}

	var operators []string
	for name := range info.methods {
		if info.implementsOperator(name) && name != "Stat" {
			operators = append(operators, name)
		}
	}
	if len(operators) < 15 {
		t.Fatalf("found only %d Operator implementations — parser miss? %v", len(operators), operators)
	}

	for _, name := range operators {
		hasChildren := info.bearsOperator(name, map[string]bool{})
		if hasChildren && !info.cases["Instrument"][name] {
			t.Errorf("*%s holds child operators but Instrument's switch has no case for it: "+
				"its subtree would run uninstrumented under EXPLAIN ANALYZE", name)
		}
		if hasChildren && !info.cases["Children"][name] {
			t.Errorf("*%s holds child operators but Children's switch has no case for it: "+
				"EXPLAIN would not render its subtree", name)
		}
		if !info.cases["Describe"][name] {
			t.Errorf("*%s has no Describe case: EXPLAIN would print a raw %%T label", name)
		}
	}

	// Stale cases: every case must name a current Operator implementation.
	for _, fn := range []string{"Instrument", "Children", "Describe"} {
		for name := range info.cases[fn] {
			if !info.implementsOperator(name) {
				t.Errorf("%s has a case for *%s, which no longer implements Operator", fn, name)
			}
		}
	}
}
