package exec

import (
	"context"
	"sort"

	"anywheredb/internal/buffer"
	"anywheredb/internal/flightrec"
	"anywheredb/internal/lock"
	"anywheredb/internal/mem"
	"anywheredb/internal/mvcc"
	"anywheredb/internal/store"
	"anywheredb/internal/table"
	"anywheredb/internal/telemetry"
	"anywheredb/internal/txn"
	"anywheredb/internal/val"
	"anywheredb/internal/vclock"
)

// Ctx carries everything an operator tree needs at run time.
type Ctx struct {
	Pool *buffer.Pool
	St   *store.Store
	Clk  *vclock.Clock
	Task *mem.Task // memory governor task; may be nil
	Tx   *txn.Txn  // may be nil
	// Snap, when set, makes every scan read the row versions visible to
	// the snapshot with zero lock-manager calls. When Snap is nil but Tx
	// is set, scans instead take a table-level Shared lock (the classic
	// locking-read path, kept as the 2PL baseline).
	Snap *mvcc.Snapshot
	// Context carries the statement's cancellation/deadline signal; nil
	// means uncancellable. Operators poll Interrupted at batch boundaries.
	Context context.Context
	// Params are the statement's positional parameters (1-based in SQL,
	// 0-based here).
	Params []val.Value
	// Workers is the target degree of intra-query parallelism; operators
	// re-read it between phases, so it can be changed mid-query (§4.4).
	Workers int
	// CPURowCost is a CPU proxy: virtual µs charged to the clock per row
	// processed, so "actual cost" measurements include CPU. 0 disables it.
	CPURowCost int64
	// ForceBatchSize pins BatchSize to a fixed value (tests, benchmarks,
	// the differential row-path harness). 0 = adaptive.
	ForceBatchSize int
	// Batches / BatchRows are optional engine telemetry for batches
	// delivered at the plan root (wired by core; nil in bare rigs).
	Batches   *telemetry.Counter
	BatchRows *telemetry.Histogram
	// Span is the statement's flight-recorder span (wired by core; nil in
	// bare rigs or with the recorder disabled). Operators charge produced
	// batches and spilled bytes to it.
	Span *flightrec.Span
	// ColSegSkipped / ColSegDecodeRows are optional engine telemetry for
	// the columnar scan path: segments skipped via zone maps and rows
	// decoded from segments (wired by core; nil in bare rigs).
	ColSegSkipped    *telemetry.Counter
	ColSegDecodeRows *telemetry.Counter
	// ScanObs, when set, receives per-table scan feedback (table name and
	// rows produced) — the reorganizer's signal that a table is scan-heavy.
	ScanObs func(tableName string, rows int64)
}

// Interrupted reports the statement's cancellation state: context.Canceled
// after a cancel, context.DeadlineExceeded past an expired statement
// timeout, nil otherwise. Long-running operators poll it at every batch
// boundary (and every few hundred rows inside materializing loops), so a
// cancelled statement stops within roughly one batch and unwinds through
// Close, releasing all of its buffer-pool pins.
func (c *Ctx) Interrupted() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// interruptEvery is how many rows a materializing loop may process between
// Interrupted polls.
const interruptEvery = 256

// ChargeRows adds the CPU proxy cost of n rows to the virtual clock.
func (c *Ctx) ChargeRows(n int) {
	if c.CPURowCost > 0 && c.Clk != nil && n > 0 {
		c.Clk.Advance(int64(n) * c.CPURowCost)
	}
}

// Operator is a batch-at-a-time iterator (a vectored Volcano protocol).
// NextBatch resets out, then fills it with up to ctx.BatchSize() rows; an
// empty batch means end of input. The Batch container belongs to the
// caller and is recycled between calls, while the Row values placed in it
// stay valid until Close. Use RowIterator for row-at-a-time consumption.
type Operator interface {
	Open(ctx *Ctx) error
	NextBatch(ctx *Ctx, out *Batch) error
	Close(ctx *Ctx) error
}

// --- Scan -----------------------------------------------------------------

// TableScan reads a table in chain order. When the table carries sealed
// column segments (internal/colseg) the scan decodes them directly into
// batch rows — bulk per-encoding loops instead of a per-row varint parse —
// and merges the heap delta tail behind them; zone maps let it skip whole
// segments that cannot satisfy a pushed-down col<op>const conjunct. The
// heap path remains the fallback whenever the table is row-only or the
// caller needs RIDs.
type TableScan struct {
	Table *table.Table

	// ZoneCol/ZoneOp/ZoneConst are an optional zone-map predicate hint:
	// the optimizer copies one sargable local conjunct (col <op> const)
	// here so segments whose min/max ranges cannot match are skipped
	// before decode. The exact Filter above the scan is unchanged — the
	// hint only proves non-matches, never matches. ZoneCol < 0 disables.
	ZoneCol   int
	ZoneOp    string
	ZoneConst val.Value
	// NoColumnar forces the heap path even on a columnar table (DML target
	// collection needs RIDs; differential harnesses need the baseline).
	NoColumnar bool

	rows []Row // materialized page batch
	pos  int
	rids []table.RID // parallel to rows on the heap path; empty on columnar
	cur  table.RID
	flat []val.Value // columnar decode buffer backing rows' storage

	segsTotal   int
	segsSkipped int
}

// lockForRead takes the locking-read table lock when the statement runs
// without a snapshot inside a transaction. Snapshot reads skip the lock
// manager entirely — that is the point of MVCC.
func lockForRead(ctx *Ctx, t *table.Table) error {
	if ctx.Snap != nil || ctx.Tx == nil {
		return nil
	}
	return ctx.Tx.LockCtx(ctx.Context, t.ID, nil, lock.Shared)
}

func (s *TableScan) Open(ctx *Ctx) error {
	s.pos = 0
	s.rows = s.rows[:0]
	s.rids = s.rids[:0]
	s.segsTotal, s.segsSkipped = 0, 0
	if err := lockForRead(ctx, s.Table); err != nil {
		return err
	}
	if !s.NoColumnar {
		if cs := s.Table.Columnar(); cs != nil {
			// Under a snapshot the sealed segments are usable only while
			// the table has no version chains: vacuum cannot reclaim an
			// entry some live snapshot still needs, so an empty store
			// (checked after grabbing cs — writers invalidate before they
			// chain) proves every sealed row is visible to every live
			// snapshot.
			if ctx.Snap == nil || s.Table.VersionsEmpty() {
				return s.openColumnar(ctx, cs)
			}
		}
	}
	n := 0
	emit := func(rid table.RID, row Row) (bool, error) {
		if n++; n%interruptEvery == 0 {
			if err := ctx.Interrupted(); err != nil {
				return false, err
			}
		}
		s.rows = append(s.rows, row)
		s.rids = append(s.rids, rid)
		return true, nil
	}
	var err error
	if ctx.Snap != nil {
		err = s.Table.ScanSnapshot(ctx.Snap, emit)
	} else {
		err = s.Table.Scan(emit)
	}
	if err == nil && ctx.ScanObs != nil {
		ctx.ScanObs(s.Table.Name, int64(len(s.rows)))
	}
	return err
}

// openColumnar materializes the scan from sealed segments plus the heap
// delta tail. The snapshot cs is immutable, so a concurrent invalidation
// cannot disturb a scan already holding it.
func (s *TableScan) openColumnar(ctx *Ctx, cs *table.ColState) error {
	ncols := len(s.Table.Columns)
	s.segsTotal = len(cs.Segs)
	// First pass: zone-map skip decisions and the exact decode footprint,
	// so the flat buffer is allocated once.
	total := 0
	for _, seg := range cs.Segs {
		if s.ZoneCol >= 0 && s.ZoneOp != "" && !seg.MayMatch(s.ZoneCol, s.ZoneOp, s.ZoneConst) {
			s.segsSkipped++
			continue
		}
		total += seg.NumRows
	}
	if cap(s.flat) < total*ncols {
		s.flat = make([]val.Value, total*ncols)
	}
	s.flat = s.flat[:total*ncols]
	off := 0
	for _, seg := range cs.Segs {
		if s.ZoneCol >= 0 && s.ZoneOp != "" && !seg.MayMatch(s.ZoneCol, s.ZoneOp, s.ZoneConst) {
			continue
		}
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		seg.DecodeInto(s.flat[off:])
		for r := 0; r < seg.NumRows; r++ {
			lo := off + r*ncols
			s.rows = append(s.rows, Row(s.flat[lo:lo+ncols:lo+ncols]))
		}
		off += seg.NumRows * ncols
	}
	if ctx.ColSegSkipped != nil && s.segsSkipped > 0 {
		ctx.ColSegSkipped.Add(uint64(s.segsSkipped))
	}
	if ctx.ColSegDecodeRows != nil && total > 0 {
		ctx.ColSegDecodeRows.Add(uint64(total))
	}
	// Delta tail: rows inserted after the segments were sealed live only
	// in the heap and are scanned the classic way. Under a snapshot the
	// tail stays version-aware — a writer may begin chaining rows here
	// mid-scan even though the store was empty at Open.
	n := 0
	emit := func(_ table.RID, row Row) (bool, error) {
		if n++; n%interruptEvery == 0 {
			if err := ctx.Interrupted(); err != nil {
				return false, err
			}
		}
		s.rows = append(s.rows, row)
		return true, nil
	}
	var err error
	if ctx.Snap != nil {
		err = s.Table.ScanSnapshotFrom(cs.DeltaStart, ctx.Snap, emit)
	} else {
		err = s.Table.ScanFrom(cs.DeltaStart, emit)
	}
	if err == nil && ctx.ScanObs != nil {
		ctx.ScanObs(s.Table.Name, int64(len(s.rows)))
	}
	return err
}

func (s *TableScan) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, s.rows, &s.pos)
	if n := out.Len(); n > 0 {
		if s.pos <= len(s.rids) {
			s.cur = s.rids[s.pos-1]
		}
		ctx.ChargeRows(n)
	}
	return nil
}

// RIDOf reports the RID of the most recently returned row. Only meaningful
// on the heap path (NoColumnar or a row-only table); columnar rows carry
// no heap address.
func (s *TableScan) RIDOf() table.RID { return s.cur }

// SegmentStats reports how many segments the last Open saw and how many
// the zone maps skipped (EXPLAIN ANALYZE display).
func (s *TableScan) SegmentStats() (total, skipped int) { return s.segsTotal, s.segsSkipped }

func (s *TableScan) Close(ctx *Ctx) error {
	s.rows = nil
	s.rids = nil
	s.flat = nil
	return nil
}

// IndexScan reads rows via an index range [Lo, Hi] (nil = open) and
// fetches the base rows.
type IndexScan struct {
	Table *table.Table
	Index *table.Index
	Lo    []byte // encoded key lower bound, inclusive; nil = from start
	Hi    []byte // encoded key upper bound; nil = to end
	HiInc bool

	rows []Row
	rids []table.RID
	pos  int
	cur  table.RID
}

func (s *IndexScan) Open(ctx *Ctx) error {
	s.rows = s.rows[:0]
	s.rids = s.rids[:0]
	s.pos = 0
	if err := lockForRead(ctx, s.Table); err != nil {
		return err
	}
	var it interface {
		Valid() bool
		Key() []byte
		Value() []byte
		Next()
		Close()
		Err() error
	}
	var err error
	if s.Lo != nil {
		it, err = s.Index.Tree.Seek(s.Lo)
	} else {
		it, err = s.Index.Tree.First()
	}
	if err != nil {
		return err
	}
	defer it.Close()
	// Under a snapshot the index is only a guide, not the truth: it tracks
	// the newest row versions, so every probed row re-resolves through its
	// version chain, its key is recomputed from the visible version and
	// re-checked against the range, and rows the current index no longer
	// points at (deleted, moved, or re-keyed by writers the snapshot does
	// not see) are recovered from the version store afterwards.
	var keys [][]byte
	var visited map[table.RID]bool
	if ctx.Snap != nil {
		visited = make(map[table.RID]bool)
	}
	n := 0
	for ; it.Valid(); it.Next() {
		if n++; n%interruptEvery == 0 {
			if err := ctx.Interrupted(); err != nil {
				return err
			}
		}
		if s.Hi != nil {
			c := compareBytes(it.Key(), s.Hi)
			if c > 0 || (c == 0 && !s.HiInc) {
				// Past the range end... but for multi-column prefixes, a key
				// beginning with Hi counts as equal when HiInc.
				if !(s.HiInc && hasPrefix(it.Key(), s.Hi)) {
					break
				}
			}
		}
		rid := table.RIDFromBytes(it.Value())
		if ctx.Snap == nil {
			row, err := s.Table.Get(rid)
			if err != nil {
				return err
			}
			s.rows = append(s.rows, row)
			s.rids = append(s.rids, rid)
			continue
		}
		visited[rid] = true
		row, ok, err := s.Table.GetVersioned(rid, ctx.Snap)
		if err != nil {
			return err
		}
		if !ok {
			continue // not visible to the snapshot (e.g. uncommitted insert)
		}
		key := s.Index.Key(row)
		if !s.keyInRange(key) {
			continue // visible version has a different key, outside the range
		}
		s.rows = append(s.rows, row)
		s.rids = append(s.rids, rid)
		keys = append(keys, key)
	}
	if err := it.Err(); err != nil {
		return err
	}
	if ctx.Snap == nil || s.Table.VersionsEmpty() {
		return nil
	}
	for _, rid := range s.Table.VersionRIDs() {
		if visited[rid] {
			continue
		}
		row, ok, err := s.Table.GetVersioned(rid, ctx.Snap)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		key := s.Index.Key(row)
		if !s.keyInRange(key) {
			continue
		}
		s.rows = append(s.rows, row)
		s.rids = append(s.rids, rid)
		keys = append(keys, key)
	}
	// Restore key order across probed and recovered rows.
	sortByKey(keys, s.rows, s.rids)
	return nil
}

// keyInRange checks a recomputed key against the scan's [Lo, Hi] bounds,
// with the same prefix nuance the probe loop applies to Hi.
func (s *IndexScan) keyInRange(key []byte) bool {
	if s.Lo != nil && compareBytes(key, s.Lo) < 0 {
		return false
	}
	if s.Hi != nil {
		c := compareBytes(key, s.Hi)
		if c > 0 || (c == 0 && !s.HiInc) {
			if !(s.HiInc && hasPrefix(key, s.Hi)) {
				return false
			}
		}
	}
	return true
}

// sortByKey co-sorts rows and rids by their recomputed index keys (stable,
// so equal keys keep probe order).
func sortByKey(keys [][]byte, rows []Row, rids []table.RID) {
	if len(keys) < 2 {
		return
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return compareBytes(keys[idx[a]], keys[idx[b]]) < 0 })
	rowsOut := make([]Row, len(rows))
	ridsOut := make([]table.RID, len(rids))
	for i, j := range idx {
		rowsOut[i] = rows[j]
		ridsOut[i] = rids[j]
	}
	copy(rows, rowsOut)
	copy(rids, ridsOut)
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func hasPrefix(k, p []byte) bool {
	if len(k) < len(p) {
		return false
	}
	for i := range p {
		if k[i] != p[i] {
			return false
		}
	}
	return true
}

func (s *IndexScan) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, s.rows, &s.pos)
	if n := out.Len(); n > 0 {
		s.cur = s.rids[s.pos-1]
		ctx.ChargeRows(n)
	}
	return nil
}

// RIDOf reports the RID of the most recently returned row.
func (s *IndexScan) RIDOf() table.RID { return s.cur }

func (s *IndexScan) Close(ctx *Ctx) error { return nil }

// --- Filter, Project, Limit ----------------------------------------------

// Observer receives execution feedback: rows matched out of rows tested.
// The optimizer wires observers that update the self-managing histograms
// (§3.2: evaluation of almost any predicate can update the histogram).
type Observer func(matched, tested float64)

// Filter passes rows satisfying the predicate, optionally reporting
// observed selectivity on Close.
type Filter struct {
	Input Operator
	Pred  Pred
	Obs   Observer

	matched, tested float64
	in              Batch
	verdicts        []Bool3
	eof             bool
}

func (f *Filter) Open(ctx *Ctx) error {
	f.matched, f.tested = 0, 0
	f.eof = false
	f.in.Reset()
	return f.Input.Open(ctx)
}

func (f *Filter) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	target := ctx.BatchSize()
	for out.Len() < target && !f.eof {
		// A selective filter may pull many input batches to fill one
		// output batch: poll cancellation at each inner boundary.
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if err := f.Input.NextBatch(ctx, &f.in); err != nil {
			return err
		}
		if f.in.Len() == 0 {
			f.eof = true
			break
		}
		var err error
		f.verdicts, err = TestBatch(f.Pred, f.in.Rows, f.verdicts[:0])
		if err != nil {
			return err
		}
		f.tested += float64(f.in.Len())
		for i, v := range f.verdicts {
			if v == True {
				out.Add(f.in.Rows[i])
			}
		}
	}
	f.matched += float64(out.Len())
	return nil
}

func (f *Filter) Close(ctx *Ctx) error {
	if f.Obs != nil && f.tested > 0 {
		f.Obs(f.matched, f.tested)
	}
	return f.Input.Close(ctx)
}

// Project evaluates expressions over input rows, one expression across the
// whole batch at a time.
type Project struct {
	Input Operator
	Exprs []Expr

	in   Batch
	cols []val.Value // column-major scratch, len = exprs × batch rows
}

func (p *Project) Open(ctx *Ctx) error { return p.Input.Open(ctx) }

func (p *Project) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	if err := p.Input.NextBatch(ctx, &p.in); err != nil {
		return err
	}
	n := p.in.Len()
	if n == 0 {
		return nil
	}
	p.cols = p.cols[:0]
	for _, e := range p.Exprs {
		var err error
		p.cols, err = EvalBatch(e, p.in.Rows, p.cols)
		if err != nil {
			return err
		}
	}
	// Transpose the column-major scratch into fresh output rows (rows must
	// stay valid after the scratch is recycled on the next call).
	w := len(p.Exprs)
	flat := make([]val.Value, w*n)
	for c := 0; c < w; c++ {
		col := p.cols[c*n : (c+1)*n]
		for r, v := range col {
			flat[r*w+c] = v
		}
	}
	for r := 0; r < n; r++ {
		out.Add(flat[r*w : (r+1)*w : (r+1)*w])
	}
	return nil
}

func (p *Project) Close(ctx *Ctx) error { return p.Input.Close(ctx) }

// Limit stops after N rows.
type Limit struct {
	Input Operator
	N     int64
	seen  int64
}

func (l *Limit) Open(ctx *Ctx) error {
	l.seen = 0
	return l.Input.Open(ctx)
}

func (l *Limit) NextBatch(ctx *Ctx, out *Batch) error {
	rem := l.N - l.seen
	if rem <= 0 {
		out.Reset()
		return nil
	}
	// Bound the child's batch to what the limit can still consume, so a
	// small LIMIT does not trigger a full default-size batch of upstream
	// work per call.
	saved := ctx.ForceBatchSize
	if int64(ctx.BatchSize()) > rem {
		ctx.ForceBatchSize = int(rem)
	}
	err := l.Input.NextBatch(ctx, out)
	ctx.ForceBatchSize = saved
	if err != nil {
		return err
	}
	if int64(out.Len()) > rem {
		out.Rows = out.Rows[:rem]
	}
	l.seen += int64(out.Len())
	return nil
}

func (l *Limit) Close(ctx *Ctx) error { return l.Input.Close(ctx) }

// UnionAll concatenates inputs (columns must align).
type UnionAll struct {
	Inputs []Operator
	cur    int
}

func (u *UnionAll) Open(ctx *Ctx) error {
	u.cur = 0
	for _, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (u *UnionAll) NextBatch(ctx *Ctx, out *Batch) error {
	for u.cur < len(u.Inputs) {
		if err := u.Inputs[u.cur].NextBatch(ctx, out); err != nil {
			return err
		}
		if out.Len() > 0 {
			return nil
		}
		u.cur++
	}
	out.Reset()
	return nil
}

func (u *UnionAll) Close(ctx *Ctx) error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Values emits fixed rows (VALUES lists, SELECT without FROM).
type Values struct {
	Rows [][]Expr
	pos  int
}

func (v *Values) Open(ctx *Ctx) error { v.pos = 0; return nil }

func (v *Values) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	target := ctx.BatchSize()
	for out.Len() < target && v.pos < len(v.Rows) {
		exprs := v.Rows[v.pos]
		v.pos++
		row := make(Row, len(exprs))
		var err error
		for i, e := range exprs {
			row[i], err = e.Eval(nil)
			if err != nil {
				return err
			}
		}
		out.Add(row)
	}
	return nil
}

func (v *Values) Close(ctx *Ctx) error { return nil }

// Materialized replays rows captured earlier (used by CTEs and subquery
// caches).
type Materialized struct {
	RowsData []Row
	pos      int
}

func (m *Materialized) Open(ctx *Ctx) error { m.pos = 0; return nil }

func (m *Materialized) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, m.RowsData, &m.pos)
	return nil
}

func (m *Materialized) Close(ctx *Ctx) error { return nil }
