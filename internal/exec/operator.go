package exec

import (
	"anywheredb/internal/buffer"
	"anywheredb/internal/mem"
	"anywheredb/internal/store"
	"anywheredb/internal/table"
	"anywheredb/internal/txn"
	"anywheredb/internal/val"
	"anywheredb/internal/vclock"
)

// Ctx carries everything an operator tree needs at run time.
type Ctx struct {
	Pool *buffer.Pool
	St   *store.Store
	Clk  *vclock.Clock
	Task *mem.Task // memory governor task; may be nil
	Tx   *txn.Txn  // may be nil
	// Params are the statement's positional parameters (1-based in SQL,
	// 0-based here).
	Params []val.Value
	// Workers is the target degree of intra-query parallelism; operators
	// re-read it between phases, so it can be changed mid-query (§4.4).
	Workers int
	// CPURowCost is a CPU proxy: virtual µs charged to the clock per row
	// processed, so "actual cost" measurements include CPU. 0 disables it.
	CPURowCost int64
}

// ChargeRows adds the CPU proxy cost of n rows to the virtual clock.
func (c *Ctx) ChargeRows(n int) {
	if c.CPURowCost > 0 && c.Clk != nil && n > 0 {
		c.Clk.Advance(int64(n) * c.CPURowCost)
	}
}

// Operator is a Volcano-style iterator.
type Operator interface {
	Open(ctx *Ctx) error
	Next(ctx *Ctx) (Row, error) // (nil, nil) at end of input
	Close(ctx *Ctx) error
}

// --- Scan -----------------------------------------------------------------

// TableScan reads a table heap in chain order.
type TableScan struct {
	Table *table.Table

	rows []Row // materialized page batch
	pos  int
	err  error
	rids []table.RID
	// WithRIDs makes the scan append a hidden RID handle column (used by
	// UPDATE/DELETE plans); see RIDOf.
	cur table.RID
}

func (s *TableScan) Open(ctx *Ctx) error {
	s.pos = 0
	s.rows = s.rows[:0]
	s.rids = s.rids[:0]
	return s.Table.Scan(func(rid table.RID, row Row) (bool, error) {
		s.rows = append(s.rows, row)
		s.rids = append(s.rids, rid)
		return true, nil
	})
}

func (s *TableScan) Next(ctx *Ctx) (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.cur = s.rids[s.pos]
	s.pos++
	ctx.ChargeRows(1)
	return r, nil
}

// RIDOf reports the RID of the most recently returned row.
func (s *TableScan) RIDOf() table.RID { return s.cur }

func (s *TableScan) Close(ctx *Ctx) error {
	s.rows = nil
	s.rids = nil
	return nil
}

// IndexScan reads rows via an index range [Lo, Hi] (nil = open) and
// fetches the base rows.
type IndexScan struct {
	Table *table.Table
	Index *table.Index
	Lo    []byte // encoded key lower bound, inclusive; nil = from start
	Hi    []byte // encoded key upper bound; nil = to end
	HiInc bool

	rows []Row
	rids []table.RID
	pos  int
	cur  table.RID
}

func (s *IndexScan) Open(ctx *Ctx) error {
	s.rows = s.rows[:0]
	s.rids = s.rids[:0]
	s.pos = 0
	var it interface {
		Valid() bool
		Key() []byte
		Value() []byte
		Next()
		Close()
		Err() error
	}
	var err error
	if s.Lo != nil {
		it, err = s.Index.Tree.Seek(s.Lo)
	} else {
		it, err = s.Index.Tree.First()
	}
	if err != nil {
		return err
	}
	defer it.Close()
	for ; it.Valid(); it.Next() {
		if s.Hi != nil {
			c := compareBytes(it.Key(), s.Hi)
			if c > 0 || (c == 0 && !s.HiInc) {
				// Past the range end... but for multi-column prefixes, a key
				// beginning with Hi counts as equal when HiInc.
				if !(s.HiInc && hasPrefix(it.Key(), s.Hi)) {
					break
				}
			}
		}
		rid := table.RIDFromBytes(it.Value())
		row, err := s.Table.Get(rid)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, row)
		s.rids = append(s.rids, rid)
	}
	return it.Err()
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func hasPrefix(k, p []byte) bool {
	if len(k) < len(p) {
		return false
	}
	for i := range p {
		if k[i] != p[i] {
			return false
		}
	}
	return true
}

func (s *IndexScan) Next(ctx *Ctx) (Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.cur = s.rids[s.pos]
	s.pos++
	ctx.ChargeRows(1)
	return r, nil
}

// RIDOf reports the RID of the most recently returned row.
func (s *IndexScan) RIDOf() table.RID { return s.cur }

func (s *IndexScan) Close(ctx *Ctx) error { return nil }

// --- Filter, Project, Limit ----------------------------------------------

// Observer receives execution feedback: rows matched out of rows tested.
// The optimizer wires observers that update the self-managing histograms
// (§3.2: evaluation of almost any predicate can update the histogram).
type Observer func(matched, tested float64)

// Filter passes rows satisfying the predicate, optionally reporting
// observed selectivity on Close.
type Filter struct {
	Input Operator
	Pred  Pred
	Obs   Observer

	matched, tested float64
}

func (f *Filter) Open(ctx *Ctx) error {
	f.matched, f.tested = 0, 0
	return f.Input.Open(ctx)
}

func (f *Filter) Next(ctx *Ctx) (Row, error) {
	for {
		row, err := f.Input.Next(ctx)
		if err != nil || row == nil {
			return nil, err
		}
		f.tested++
		v, err := f.Pred.Test(row)
		if err != nil {
			return nil, err
		}
		if v == True {
			f.matched++
			return row, nil
		}
	}
}

func (f *Filter) Close(ctx *Ctx) error {
	if f.Obs != nil && f.tested > 0 {
		f.Obs(f.matched, f.tested)
	}
	return f.Input.Close(ctx)
}

// Project evaluates expressions over input rows.
type Project struct {
	Input Operator
	Exprs []Expr
}

func (p *Project) Open(ctx *Ctx) error { return p.Input.Open(ctx) }

func (p *Project) Next(ctx *Ctx) (Row, error) {
	row, err := p.Input.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i], err = e.Eval(row)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (p *Project) Close(ctx *Ctx) error { return p.Input.Close(ctx) }

// Limit stops after N rows.
type Limit struct {
	Input Operator
	N     int64
	seen  int64
}

func (l *Limit) Open(ctx *Ctx) error {
	l.seen = 0
	return l.Input.Open(ctx)
}

func (l *Limit) Next(ctx *Ctx) (Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next(ctx)
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

func (l *Limit) Close(ctx *Ctx) error { return l.Input.Close(ctx) }

// UnionAll concatenates inputs (columns must align).
type UnionAll struct {
	Inputs []Operator
	cur    int
}

func (u *UnionAll) Open(ctx *Ctx) error {
	u.cur = 0
	for _, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

func (u *UnionAll) Next(ctx *Ctx) (Row, error) {
	for u.cur < len(u.Inputs) {
		row, err := u.Inputs[u.cur].Next(ctx)
		if err != nil {
			return nil, err
		}
		if row != nil {
			return row, nil
		}
		u.cur++
	}
	return nil, nil
}

func (u *UnionAll) Close(ctx *Ctx) error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Values emits fixed rows (VALUES lists, SELECT without FROM).
type Values struct {
	Rows [][]Expr
	pos  int
}

func (v *Values) Open(ctx *Ctx) error { v.pos = 0; return nil }

func (v *Values) Next(ctx *Ctx) (Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	exprs := v.Rows[v.pos]
	v.pos++
	out := make(Row, len(exprs))
	var err error
	for i, e := range exprs {
		out[i], err = e.Eval(nil)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (v *Values) Close(ctx *Ctx) error { return nil }

// Materialized replays rows captured earlier (used by CTEs and subquery
// caches).
type Materialized struct {
	RowsData []Row
	pos      int
}

func (m *Materialized) Open(ctx *Ctx) error { m.pos = 0; return nil }

func (m *Materialized) Next(ctx *Ctx) (Row, error) {
	if m.pos >= len(m.RowsData) {
		return nil, nil
	}
	r := m.RowsData[m.pos]
	m.pos++
	return r, nil
}

func (m *Materialized) Close(ctx *Ctx) error { return nil }

// Drain runs an operator to completion, returning all rows. If Open fails
// partway through a tree, Close still runs so operators release their
// buffer-pool pins and temp pages.
func Drain(ctx *Ctx, op Operator) ([]Row, error) {
	if err := op.Open(ctx); err != nil {
		op.Close(ctx)
		return nil, err
	}
	defer op.Close(ctx)
	var out []Row
	for {
		row, err := op.Next(ctx)
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}
