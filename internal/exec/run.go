package exec

import (
	"anywheredb/internal/buffer"
	"anywheredb/internal/page"
	"anywheredb/internal/store"
	"anywheredb/internal/val"
)

// run is a sequence of serialized rows in temporary-file pages: the unit of
// spilling for hash operations and external sorting. Pages are unpinned as
// they fill, so a run consumes one buffer frame while being written or
// read; its contents live in the temp file.
type run struct {
	pages []store.PageID
	rows  int
}

// runWriter appends rows to a run. Writing is batch-oriented: addBatch pins
// the tail page once per batch and packs rows until it overflows, so the
// pool round-trips scale with pages written, not rows written. No pin is
// held between calls.
type runWriter struct {
	ctx *Ctx
	r   run
	one [1]Row // scratch for the row-at-a-time wrapper
}

func newRunWriter(ctx *Ctx) *runWriter { return &runWriter{ctx: ctx} }

// add appends one row (wrapper over addBatch for the few per-row sites).
func (w *runWriter) add(row Row) error {
	w.one[0] = row
	return w.addBatch(w.one[:])
}

// addBatch appends a batch of rows with one pool Get for the tail page plus
// one NewPage per page the batch overflows into.
func (w *runWriter) addBatch(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	var f *buffer.Frame
	dirty := false
	if len(w.r.pages) > 0 {
		var err error
		f, err = w.ctx.Pool.Get(w.r.pages[len(w.r.pages)-1])
		if err != nil {
			return err
		}
	}
	var spilled int64
	for _, row := range rows {
		enc := val.EncodeRow(row)
		spilled += int64(len(enc))
		for attempt := 0; ; attempt++ {
			if f != nil {
				if slot := f.Data.Insert(enc); slot >= 0 {
					f.MarkDirty()
					dirty = true
					w.r.rows++
					break
				}
				w.ctx.Pool.Unpin(f, dirty)
				f, dirty = nil, false
			}
			if attempt > 0 {
				// A fresh page could not hold the row either.
				return errRowTooBig
			}
			nf, err := w.ctx.Pool.NewPage(store.TempFile, page.TypeTemp)
			if err != nil {
				return err
			}
			w.r.pages = append(w.r.pages, nf.ID)
			f, dirty = nf, true
		}
	}
	if f != nil {
		w.ctx.Pool.Unpin(f, dirty)
	}
	if w.ctx.Span != nil {
		w.ctx.Span.AddSpill(spilled)
	}
	return nil
}

var errRowTooBig = errTooBig{}

type errTooBig struct{}

func (errTooBig) Error() string { return "exec: spilled row exceeds page capacity" }

func (w *runWriter) finish() run { return w.r }

// eachBatch iterates the run page by page, yielding each page's rows as one
// batch: one pool Get decodes a whole page. The slice is only valid during
// the callback.
func (r *run) eachBatch(ctx *Ctx, fn func([]Row) error) error {
	var rows []Row
	for _, id := range r.pages {
		f, err := ctx.Pool.Get(id)
		if err != nil {
			return err
		}
		f.RLock()
		rows = rows[:0]
		for s := 0; s < f.Data.NumSlots(); s++ {
			cell := f.Data.Cell(s)
			if cell == nil {
				continue
			}
			row, err := val.DecodeRow(cell)
			if err != nil {
				f.RUnlock()
				ctx.Pool.Unpin(f, false)
				return err
			}
			rows = append(rows, row)
		}
		f.RUnlock()
		ctx.Pool.Unpin(f, false)
		if err := fn(rows); err != nil {
			return err
		}
	}
	return nil
}

// each iterates the run's rows in order.
func (r *run) each(ctx *Ctx, fn func(Row) error) error {
	return r.eachBatch(ctx, func(rows []Row) error {
		for _, row := range rows {
			if err := fn(row); err != nil {
				return err
			}
		}
		return nil
	})
}

// rowsCount reports the number of rows written to the run.
func (r *run) rowsCount() int64 { return int64(r.rows) }

// free discards the run's pages (lookaside-queue fast path).
func (r *run) free(ctx *Ctx) {
	for _, id := range r.pages {
		ctx.Pool.Discard(id)
		_ = ctx.St.Free(id)
	}
	r.pages = nil
	r.rows = 0
}
