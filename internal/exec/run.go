package exec

import (
	"anywheredb/internal/page"
	"anywheredb/internal/store"
	"anywheredb/internal/val"
)

// run is a sequence of serialized rows in temporary-file pages: the unit of
// spilling for hash operations and external sorting. Pages are unpinned as
// they fill, so a run consumes one buffer frame while being written or
// read; its contents live in the temp file.
type run struct {
	pages []store.PageID
	rows  int
}

// runWriter appends rows to a run.
type runWriter struct {
	ctx *Ctx
	r   run
	cur *frameRef
}

type frameRef struct {
	f  interface{ MarkDirty() }
	id store.PageID
}

func newRunWriter(ctx *Ctx) *runWriter { return &runWriter{ctx: ctx} }

func (w *runWriter) add(row Row) error {
	enc := val.EncodeRow(row)
	for attempt := 0; attempt < 2; attempt++ {
		if len(w.r.pages) > 0 {
			last := w.r.pages[len(w.r.pages)-1]
			f, err := w.ctx.Pool.Get(last)
			if err != nil {
				return err
			}
			slot := f.Data.Insert(enc)
			if slot >= 0 {
				f.MarkDirty()
				w.ctx.Pool.Unpin(f, true)
				w.r.rows++
				return nil
			}
			w.ctx.Pool.Unpin(f, false)
		}
		// Need a fresh page.
		f, err := w.ctx.Pool.NewPage(store.TempFile, page.TypeTemp)
		if err != nil {
			return err
		}
		w.r.pages = append(w.r.pages, f.ID)
		w.ctx.Pool.Unpin(f, true)
	}
	return errRowTooBig
}

var errRowTooBig = errTooBig{}

type errTooBig struct{}

func (errTooBig) Error() string { return "exec: spilled row exceeds page capacity" }

func (w *runWriter) finish() run { return w.r }

// each iterates the run's rows in order.
func (r *run) each(ctx *Ctx, fn func(Row) error) error {
	for _, id := range r.pages {
		f, err := ctx.Pool.Get(id)
		if err != nil {
			return err
		}
		f.RLock()
		var rows []Row
		for s := 0; s < f.Data.NumSlots(); s++ {
			cell := f.Data.Cell(s)
			if cell == nil {
				continue
			}
			row, err := val.DecodeRow(cell)
			if err != nil {
				f.RUnlock()
				ctx.Pool.Unpin(f, false)
				return err
			}
			rows = append(rows, row)
		}
		f.RUnlock()
		ctx.Pool.Unpin(f, false)
		for _, row := range rows {
			if err := fn(row); err != nil {
				return err
			}
		}
	}
	return nil
}

// rowsCount reports the number of rows written to the run.
func (r *run) rowsCount() int64 { return int64(r.rows) }

// free discards the run's pages (lookaside-queue fast path).
func (r *run) free(ctx *Ctx) {
	for _, id := range r.pages {
		ctx.Pool.Discard(id)
		_ = ctx.St.Free(id)
	}
	r.pages = nil
	r.rows = 0
}
