// Package exec implements the query execution engine: Volcano-style
// operators over value rows, with the adaptive behaviours of §4.3/§4.4 —
// memory-governed hash operations with largest-partition eviction, a
// post-build switch from hash join to index nested loops, low-memory
// fallbacks, and intra-query parallelism with first-come-first-served load
// balancing.
package exec

import (
	"fmt"

	"anywheredb/internal/val"
)

// Row is one tuple flowing between operators.
type Row = []val.Value

// Expr is a compiled scalar expression, bound to row ordinals.
type Expr interface {
	Eval(row Row) (val.Value, error)
}

// Const is a literal.
type Const struct{ V val.Value }

func (c Const) Eval(Row) (val.Value, error) { return c.V, nil }

// Col reads the row ordinal Idx.
type Col struct{ Idx int }

func (c Col) Eval(r Row) (val.Value, error) {
	if c.Idx < 0 || c.Idx >= len(r) {
		return val.Null, fmt.Errorf("exec: column ordinal %d out of range %d", c.Idx, len(r))
	}
	return r[c.Idx], nil
}

// Arith is +, -, *, /, %.
type Arith struct {
	Op   byte // '+', '-', '*', '/', '%'
	L, R Expr
}

func (a Arith) Eval(r Row) (val.Value, error) {
	l, err := a.L.Eval(r)
	if err != nil {
		return val.Null, err
	}
	rv, err := a.R.Eval(r)
	if err != nil {
		return val.Null, err
	}
	if l.IsNull() || rv.IsNull() {
		return val.Null, nil
	}
	// Integer arithmetic stays integral except division by non-divisor.
	if l.Kind == val.KInt && rv.Kind == val.KInt {
		x, y := l.I, rv.I
		switch a.Op {
		case '+':
			return val.NewInt(x + y), nil
		case '-':
			return val.NewInt(x - y), nil
		case '*':
			return val.NewInt(x * y), nil
		case '/':
			if y == 0 {
				return val.Null, fmt.Errorf("exec: division by zero")
			}
			if x%y == 0 {
				return val.NewInt(x / y), nil
			}
			return val.NewDouble(float64(x) / float64(y)), nil
		case '%':
			if y == 0 {
				return val.Null, fmt.Errorf("exec: division by zero")
			}
			return val.NewInt(x % y), nil
		}
	}
	x, y := l.AsFloat(), rv.AsFloat()
	switch a.Op {
	case '+':
		return val.NewDouble(x + y), nil
	case '-':
		return val.NewDouble(x - y), nil
	case '*':
		return val.NewDouble(x * y), nil
	case '/':
		if y == 0 {
			return val.Null, fmt.Errorf("exec: division by zero")
		}
		return val.NewDouble(x / y), nil
	case '%':
		if y == 0 {
			return val.Null, fmt.Errorf("exec: division by zero")
		}
		return val.NewDouble(float64(int64(x) % int64(y))), nil
	}
	return val.Null, fmt.Errorf("exec: bad arithmetic op %q", a.Op)
}

// Neg is unary minus.
type Neg struct{ E Expr }

func (n Neg) Eval(r Row) (val.Value, error) {
	v, err := n.E.Eval(r)
	if err != nil || v.IsNull() {
		return val.Null, err
	}
	if v.Kind == val.KInt {
		return val.NewInt(-v.I), nil
	}
	return val.NewDouble(-v.AsFloat()), nil
}

// Bool3 is SQL three-valued logic: False, True, or Unknown.
type Bool3 int8

const (
	False   Bool3 = 0
	True    Bool3 = 1
	Unknown Bool3 = 2
)

// Pred is a compiled predicate.
type Pred interface {
	Test(row Row) (Bool3, error)
}

// Cmp compares two expressions with a relational operator.
type Cmp struct {
	Op   string // = <> < <= > >=
	L, R Expr
}

func (c Cmp) Test(r Row) (Bool3, error) {
	l, err := c.L.Eval(r)
	if err != nil {
		return Unknown, err
	}
	rv, err := c.R.Eval(r)
	if err != nil {
		return Unknown, err
	}
	if l.IsNull() || rv.IsNull() {
		return Unknown, nil
	}
	n := val.Compare(l, rv)
	var b bool
	switch c.Op {
	case "=":
		b = n == 0
	case "<>":
		b = n != 0
	case "<":
		b = n < 0
	case "<=":
		b = n <= 0
	case ">":
		b = n > 0
	case ">=":
		b = n >= 0
	default:
		return Unknown, fmt.Errorf("exec: bad comparison %q", c.Op)
	}
	if b {
		return True, nil
	}
	return False, nil
}

// And short-circuits per 3VL.
type And struct{ L, R Pred }

func (a And) Test(r Row) (Bool3, error) {
	l, err := a.L.Test(r)
	if err != nil {
		return Unknown, err
	}
	if l == False {
		return False, nil
	}
	rv, err := a.R.Test(r)
	if err != nil {
		return Unknown, err
	}
	if rv == False {
		return False, nil
	}
	if l == True && rv == True {
		return True, nil
	}
	return Unknown, nil
}

// Or short-circuits per 3VL.
type Or struct{ L, R Pred }

func (o Or) Test(r Row) (Bool3, error) {
	l, err := o.L.Test(r)
	if err != nil {
		return Unknown, err
	}
	if l == True {
		return True, nil
	}
	rv, err := o.R.Test(r)
	if err != nil {
		return Unknown, err
	}
	if rv == True {
		return True, nil
	}
	if l == False && rv == False {
		return False, nil
	}
	return Unknown, nil
}

// Not inverts per 3VL.
type Not struct{ P Pred }

func (n Not) Test(r Row) (Bool3, error) {
	v, err := n.P.Test(r)
	if err != nil || v == Unknown {
		return Unknown, err
	}
	if v == True {
		return False, nil
	}
	return True, nil
}

// IsNullPred is expr IS [NOT] NULL (never Unknown).
type IsNullPred struct {
	E   Expr
	Neg bool
}

func (p IsNullPred) Test(r Row) (Bool3, error) {
	v, err := p.E.Eval(r)
	if err != nil {
		return Unknown, err
	}
	if v.IsNull() != p.Neg {
		return True, nil
	}
	return False, nil
}

// BetweenPred is expr [NOT] BETWEEN lo AND hi.
type BetweenPred struct {
	E, Lo, Hi Expr
	Neg       bool
}

func (p BetweenPred) Test(r Row) (Bool3, error) {
	inner := And{Cmp{Op: ">=", L: p.E, R: p.Lo}, Cmp{Op: "<=", L: p.E, R: p.Hi}}
	v, err := inner.Test(r)
	if err != nil || v == Unknown {
		return Unknown, err
	}
	if p.Neg {
		if v == True {
			return False, nil
		}
		return True, nil
	}
	return v, nil
}

// LikePred is expr [NOT] LIKE pattern.
type LikePred struct {
	E, Pattern Expr
	Neg        bool
}

func (p LikePred) Test(r Row) (Bool3, error) {
	v, err := p.E.Eval(r)
	if err != nil {
		return Unknown, err
	}
	pat, err := p.Pattern.Eval(r)
	if err != nil {
		return Unknown, err
	}
	if v.IsNull() || pat.IsNull() {
		return Unknown, nil
	}
	m := val.LikeMatch(v.String(), pat.String())
	if m != p.Neg {
		return True, nil
	}
	return False, nil
}

// InListPred is expr [NOT] IN (v1, ...).
type InListPred struct {
	E    Expr
	List []Expr
	Neg  bool
}

func (p InListPred) Test(r Row) (Bool3, error) {
	v, err := p.E.Eval(r)
	if err != nil {
		return Unknown, err
	}
	if v.IsNull() {
		return Unknown, nil
	}
	sawNull := false
	for _, le := range p.List {
		lv, err := le.Eval(r)
		if err != nil {
			return Unknown, err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if val.Compare(v, lv) == 0 {
			if p.Neg {
				return False, nil
			}
			return True, nil
		}
	}
	if sawNull {
		return Unknown, nil
	}
	if p.Neg {
		return True, nil
	}
	return False, nil
}

// PredExpr adapts a predicate to an Expr (for SELECT of boolean results).
type PredExpr struct{ P Pred }

func (p PredExpr) Eval(r Row) (val.Value, error) {
	v, err := p.P.Test(r)
	if err != nil || v == Unknown {
		return val.Null, err
	}
	return val.NewInt(int64(v)), nil
}

// TruePred always passes.
type TruePred struct{}

func (TruePred) Test(Row) (Bool3, error) { return True, nil }
