package exec

import (
	"sort"

	"anywheredb/internal/val"
)

// SortKey is one ordering term.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders its input. Rows are buffered in memory up to the memory
// governor's quota; beyond it, sorted runs are written to the temporary
// file and merged on output (the classic external-merge shape demanded by
// §4.3's memory-adaptive operators).
type Sort struct {
	Input Operator
	Keys  []SortKey
	Depth int
	// MaxRowsInMemory caps the in-memory buffer (0 = derive from the soft
	// limit; tests set it explicitly).
	MaxRowsInMemory int

	buf        []Row
	runs       []run
	merged     []Row
	pos        int
	spilledAny bool
	registered bool
	inputOpen  bool
	ctx        *Ctx
}

// Spilled reports whether external runs were used.
func (s *Sort) Spilled() bool { return s.spilledAny }

// MemoryPages implements mem.Consumer (rows per page approximation).
func (s *Sort) MemoryPages() int { return len(s.buf)/16 + 1 }

// ReleaseMemory implements mem.Consumer: flush the buffer as a sorted run.
func (s *Sort) ReleaseMemory(want int) int {
	if s.ctx == nil || len(s.buf) == 0 {
		return 0
	}
	before := s.MemoryPages()
	if err := s.flushRun(s.ctx); err != nil {
		return 0
	}
	return before
}

func (s *Sort) Open(ctx *Ctx) error {
	s.buf = nil
	s.runs = nil
	s.merged = nil
	s.pos = 0
	s.spilledAny = false
	s.ctx = ctx
	if ctx.Task != nil && !s.registered {
		ctx.Task.Register(s, s.Depth)
		s.registered = true
	}
	// Mark the child open BEFORE Open is attempted: a child whose Open
	// failed mid-way may hold pinned heap pages that only its Close
	// releases, so Close must still reach it.
	s.inputOpen = true
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	maxRows := s.MaxRowsInMemory
	var in Batch
	for {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if err := s.Input.NextBatch(ctx, &in); err != nil {
			return err
		}
		if in.Len() == 0 {
			break
		}
		ctx.ChargeRows(in.Len())
		s.buf = append(s.buf, in.Rows...)
		if maxRows > 0 && len(s.buf) >= maxRows {
			if err := s.flushRun(ctx); err != nil {
				return err
			}
		}
	}
	s.inputOpen = false
	if err := s.Input.Close(ctx); err != nil {
		return err
	}
	if len(s.runs) == 0 {
		s.sortBuf()
		s.merged = s.buf
		s.buf = nil
		return nil
	}
	// Final partial run, then k-way merge.
	if len(s.buf) > 0 {
		if err := s.flushRun(ctx); err != nil {
			return err
		}
	}
	return s.merge(ctx)
}

func (s *Sort) less(a, b Row) bool {
	for _, k := range s.Keys {
		av, _ := k.Expr.Eval(a)
		bv, _ := k.Expr.Eval(b)
		c := val.Compare(av, bv)
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

func (s *Sort) sortBuf() {
	sort.SliceStable(s.buf, func(i, j int) bool { return s.less(s.buf[i], s.buf[j]) })
}

func (s *Sort) flushRun(ctx *Ctx) error {
	if len(s.buf) == 0 {
		return nil
	}
	s.sortBuf()
	w := newRunWriter(ctx)
	if err := w.addBatch(s.buf); err != nil {
		return err
	}
	s.runs = append(s.runs, w.finish())
	s.buf = s.buf[:0]
	s.spilledAny = true
	return nil
}

// merge performs a k-way merge of the sorted runs. Runs are materialized
// one cursor page at a time by the buffer pool; the merge itself keeps one
// row per run.
func (s *Sort) merge(ctx *Ctx) error {
	// Load each run fully-lazily would need an iterator per run; for
	// simplicity each run is streamed through a channel-free cursor:
	// materialize per run into a slice of rows read page-at-a-time.
	cursors := make([][]Row, len(s.runs))
	for i := range s.runs {
		var rows []Row
		if err := s.runs[i].eachBatch(ctx, func(batch []Row) error {
			rows = append(rows, batch...)
			return nil
		}); err != nil {
			return err
		}
		cursors[i] = rows
	}
	idx := make([]int, len(cursors))
	for n := 0; ; n++ {
		if n%interruptEvery == 0 {
			if err := ctx.Interrupted(); err != nil {
				return err
			}
		}
		best := -1
		for i := range cursors {
			if idx[i] >= len(cursors[i]) {
				continue
			}
			if best == -1 || s.less(cursors[i][idx[i]], cursors[best][idx[best]]) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		s.merged = append(s.merged, cursors[best][idx[best]])
		idx[best]++
	}
	for i := range s.runs {
		s.runs[i].free(ctx)
	}
	s.runs = nil
	return nil
}

func (s *Sort) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, s.merged, &s.pos)
	return nil
}

func (s *Sort) Close(ctx *Ctx) error {
	if ctx.Task != nil && s.registered {
		ctx.Task.Unregister(s)
		s.registered = false
	}
	for i := range s.runs {
		s.runs[i].free(ctx)
	}
	s.runs = nil
	s.merged = nil
	s.buf = nil
	if s.inputOpen {
		s.inputOpen = false
		return s.Input.Close(ctx)
	}
	return nil
}

// RecursiveUnion implements WITH RECURSIVE: it evaluates the base query,
// then repeatedly re-evaluates the recursive query against the previous
// iteration's rows until a fixpoint (UNION ALL semantics with a safety
// bound). The operator can switch strategies between iterations (§4.3): it
// starts with an in-memory duplicate-free working set and degrades to
// unconditional append (pure UNION ALL) when the working set grows large —
// sharing work from iteration to iteration via the materialized deltas.
type RecursiveUnion struct {
	Base Operator
	// Recursive builds the next delta from the previous one; it is invoked
	// with a Materialized operator holding the previous delta.
	Recursive func(prev *Materialized) Operator
	// MaxIterations bounds runaway recursion.
	MaxIterations int
	// DedupLimit is the working-set size at which the operator switches
	// from duplicate elimination to append-only (strategy switch).
	DedupLimit int

	out        []Row
	pos        int
	iterations int
	switched   bool
}

// Iterations reports how many recursive steps ran.
func (r *RecursiveUnion) Iterations() int { return r.iterations }

// SwitchedStrategy reports whether the per-iteration strategy switch
// occurred.
func (r *RecursiveUnion) SwitchedStrategy() bool { return r.switched }

func (r *RecursiveUnion) Open(ctx *Ctx) error {
	r.out = nil
	r.pos = 0
	r.iterations = 0
	r.switched = false
	if r.MaxIterations <= 0 {
		r.MaxIterations = 10000
	}
	if r.DedupLimit <= 0 {
		r.DedupLimit = 1 << 16
	}
	seen := map[uint64][]Row{}
	dedup := true
	addRow := func(row Row) bool {
		if dedup {
			h := val.HashRow(row)
			for _, prev := range seen[h] {
				if rowsEqualNullSafe(prev, row) {
					return false
				}
			}
			seen[h] = append(seen[h], row)
			if len(r.out) >= r.DedupLimit {
				dedup = false
				r.switched = true
				seen = nil
			}
		}
		r.out = append(r.out, row)
		return true
	}

	delta, err := Drain(ctx, r.Base)
	if err != nil {
		return err
	}
	var next []Row
	for _, row := range delta {
		if addRow(row) {
			next = append(next, row)
		}
	}
	delta = next

	for len(delta) > 0 && r.iterations < r.MaxIterations {
		r.iterations++
		prev := &Materialized{RowsData: delta}
		op := r.Recursive(prev)
		rows, err := Drain(ctx, op)
		if err != nil {
			return err
		}
		delta = nil
		for _, row := range rows {
			if addRow(row) {
				delta = append(delta, row)
			}
		}
	}
	return nil
}

func (r *RecursiveUnion) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, r.out, &r.pos)
	return nil
}

func (r *RecursiveUnion) Close(ctx *Ctx) error {
	r.out = nil
	return nil
}
