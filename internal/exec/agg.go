package exec

import (
	"fmt"

	"anywheredb/internal/btree"
	"anywheredb/internal/store"
	"anywheredb/internal/val"
)

// AggFn enumerates aggregate functions.
type AggFn uint8

const (
	AggCountStar AggFn = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// AggSpec is one aggregate computation.
type AggSpec struct {
	Fn       AggFn
	Arg      Expr // nil for COUNT(*)
	Distinct bool
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count int64
	sum   float64
	sumI  int64
	isInt bool
	min   val.Value
	max   val.Value
	seen  map[uint64]bool // for DISTINCT
	init  bool
}

func newAggState(spec AggSpec) *aggState {
	s := &aggState{isInt: true}
	if spec.Distinct {
		s.seen = map[uint64]bool{}
	}
	return s
}

func (s *aggState) add(spec AggSpec, row Row) error {
	if spec.Fn == AggCountStar {
		s.count++
		return nil
	}
	v, err := spec.Arg.Eval(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates ignore NULLs
	}
	if spec.Distinct {
		h := val.Hash64(v)
		if s.seen[h] {
			return nil
		}
		s.seen[h] = true
	}
	s.count++
	switch spec.Fn {
	case AggSum, AggAvg:
		if v.Kind == val.KInt && s.isInt {
			s.sumI += v.I
		} else {
			if s.isInt {
				s.sum = float64(s.sumI)
				s.isInt = false
			}
			s.sum += v.AsFloat()
		}
	case AggMin:
		if !s.init || val.Compare(v, s.min) < 0 {
			s.min = v
		}
	case AggMax:
		if !s.init || val.Compare(v, s.max) > 0 {
			s.max = v
		}
	}
	s.init = true
	return nil
}

func (s *aggState) result(spec AggSpec) val.Value {
	switch spec.Fn {
	case AggCountStar, AggCount:
		return val.NewInt(s.count)
	case AggSum:
		if s.count == 0 {
			return val.Null
		}
		if s.isInt {
			return val.NewInt(s.sumI)
		}
		return val.NewDouble(s.sum)
	case AggAvg:
		if s.count == 0 {
			return val.Null
		}
		total := s.sum
		if s.isInt {
			total = float64(s.sumI)
		}
		return val.NewDouble(total / float64(s.count))
	case AggMin:
		if !s.init {
			return val.Null
		}
		return s.min
	case AggMax:
		if !s.init {
			return val.Null
		}
		return s.max
	}
	return val.Null
}

// encode/decode aggregate state rows for the low-memory fallback: the
// partial state is flattened into a value row.
func (s *aggState) encode(spec AggSpec) Row {
	isInt := int64(0)
	if s.isInt {
		isInt = 1
	}
	init := int64(0)
	if s.init {
		init = 1
	}
	return Row{
		val.NewInt(s.count), val.NewDouble(s.sum), val.NewInt(s.sumI),
		val.NewInt(isInt), s.min, s.max, val.NewInt(init),
	}
}

const aggStateWidth = 7

func decodeAggState(spec AggSpec, r Row) *aggState {
	return &aggState{
		count: r[0].I, sum: r[1].F, sumI: r[2].I,
		isInt: r[3].I == 1, min: r[4], max: r[5], init: r[6].I == 1,
	}
}

// mergeAggState folds other into s (both must be non-DISTINCT; the
// fallback never needs to merge DISTINCT state because groups re-aggregate
// from scratch when reloaded).
func (s *aggState) merge(spec AggSpec, o *aggState) {
	s.count += o.count
	if s.isInt && o.isInt {
		s.sumI += o.sumI
	} else {
		if s.isInt {
			s.sum = float64(s.sumI)
			s.isInt = false
		}
		of := o.sum
		if o.isInt {
			of = float64(o.sumI)
		}
		s.sum += of
	}
	if o.init {
		if !s.init || val.Compare(o.min, s.min) < 0 {
			s.min = o.min
		}
		if !s.init || val.Compare(o.max, s.max) > 0 {
			s.max = o.max
		}
		s.init = true
	}
}

// HashGroupBy groups rows by key expressions and computes aggregates.
// Output rows are key values followed by aggregate results.
//
// Low-memory fallback (§4.3): when the memory governor squeezes the
// operator (ReleaseMemory), in-memory groups are flushed into a temporary
// B+-tree indexed on the grouping columns, holding partially computed
// groups; further flushes merge into it. This bounds memory at the price
// of temp I/O, and is only used in extraordinary cases.
type HashGroupBy struct {
	Input Operator
	Keys  []Expr
	Aggs  []AggSpec
	Depth int

	groups     map[uint64][]*group
	nGroups    int
	fellBack   bool
	fb         *btree.Tree
	out        []Row
	pos        int
	done       bool
	registered bool
	inputOpen  bool
	ctx        *Ctx
	// MaxGroupsInMemory caps the hash table before a voluntary flush (the
	// optimizer's page-quota annotation translates to this; 0 = unlimited).
	MaxGroupsInMemory int
}

type group struct {
	keys Row
	aggs []*aggState
}

// FellBack reports whether the low-memory fallback engaged.
func (g *HashGroupBy) FellBack() bool { return g.fellBack }

// MemoryPages implements mem.Consumer (approximate: groups per page).
func (g *HashGroupBy) MemoryPages() int { return g.nGroups/16 + 1 }

// ReleaseMemory implements mem.Consumer: engage the low-memory fallback,
// spilling all in-memory groups to the temp-file B+-tree.
func (g *HashGroupBy) ReleaseMemory(want int) int {
	if g.ctx == nil || g.nGroups == 0 || g.hasDistinctAgg() {
		return 0
	}
	before := g.MemoryPages()
	if err := g.flushToFallback(g.ctx); err != nil {
		return 0
	}
	return before
}

func (g *HashGroupBy) Open(ctx *Ctx) error {
	g.groups = map[uint64][]*group{}
	g.nGroups = 0
	g.fellBack = false
	g.fb = nil
	g.out = nil
	g.pos = 0
	g.done = false
	g.ctx = ctx
	if ctx.Task != nil && !g.registered {
		ctx.Task.Register(g, g.Depth)
		g.registered = true
	}
	// Mark the child open BEFORE Open is attempted: a child whose Open
	// failed mid-way may hold pinned heap pages that only its Close
	// releases, so Close must still reach it.
	g.inputOpen = true
	if err := g.Input.Open(ctx); err != nil {
		return err
	}
	var in Batch
	for {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if err := g.Input.NextBatch(ctx, &in); err != nil {
			return err
		}
		if in.Len() == 0 {
			break
		}
		ctx.ChargeRows(in.Len())
		for _, row := range in.Rows {
			if err := g.addRow(ctx, row); err != nil {
				return err
			}
		}
	}
	g.inputOpen = false
	if err := g.Input.Close(ctx); err != nil {
		return err
	}
	return g.finalize(ctx)
}

func (g *HashGroupBy) addRow(ctx *Ctx, row Row) error {
	keys := make(Row, len(g.Keys))
	for i, e := range g.Keys {
		v, err := e.Eval(row)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	h := val.HashRow(keys)
	var grp *group
	for _, cand := range g.groups[h] {
		if rowsEqualNullSafe(cand.keys, keys) {
			grp = cand
			break
		}
	}
	if grp == nil {
		grp = &group{keys: keys, aggs: make([]*aggState, len(g.Aggs))}
		for i, spec := range g.Aggs {
			grp.aggs[i] = newAggState(spec)
		}
		g.groups[h] = append(g.groups[h], grp)
		g.nGroups++
		if g.MaxGroupsInMemory > 0 && g.nGroups > g.MaxGroupsInMemory && !g.hasDistinctAgg() {
			if err := g.flushToFallback(ctx); err != nil {
				return err
			}
			// The fresh group was flushed too; re-create it empty so this
			// row still lands somewhere.
			grp = &group{keys: keys, aggs: make([]*aggState, len(g.Aggs))}
			for i, spec := range g.Aggs {
				grp.aggs[i] = newAggState(spec)
			}
			g.groups[h] = append(g.groups[h], grp)
			g.nGroups++
		}
	}
	for i, spec := range g.Aggs {
		if err := grp.aggs[i].add(spec, row); err != nil {
			return err
		}
	}
	return nil
}

// rowsEqualNullSafe compares group keys with NULL = NULL (SQL GROUP BY
// treats NULLs as one group).
func rowsEqualNullSafe(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		an, bn := a[i].IsNull(), b[i].IsNull()
		if an != bn {
			return false
		}
		if !an && val.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

// hasDistinctAgg reports whether any aggregate is DISTINCT; their seen-sets
// cannot be spilled, so the fallback is unavailable (memory is then bounded
// only by the hard limit).
func (g *HashGroupBy) hasDistinctAgg() bool {
	for _, s := range g.Aggs {
		if s.Distinct {
			return true
		}
	}
	return false
}

// flushToFallback moves every in-memory group into the temp-file B+-tree
// of partial groups, keyed on the grouping columns.
func (g *HashGroupBy) flushToFallback(ctx *Ctx) error {
	if g.hasDistinctAgg() {
		return fmt.Errorf("exec: cannot spill DISTINCT aggregate state")
	}
	if g.fb == nil {
		t, err := btree.Create(ctx.Pool, ctx.St, store.TempFile, 0)
		if err != nil {
			return err
		}
		g.fb = t
		g.fellBack = true
	}
	for h, grps := range g.groups {
		for _, grp := range grps {
			key := val.EncodeKey(grp.keys)
			// Merge with any existing partial group.
			if existing, found, err := g.fb.Search(key); err != nil {
				return err
			} else if found {
				stored, err := val.DecodeRow(existing)
				if err != nil {
					return err
				}
				merged := g.decodeGroup(grp.keys, stored)
				for i, spec := range g.Aggs {
					merged.aggs[i].merge(spec, grp.aggs[i])
				}
				grp = merged
				if _, err := g.fb.Delete(key, nil); err != nil {
					return err
				}
			}
			var flat Row
			for i, spec := range g.Aggs {
				flat = append(flat, grp.aggs[i].encode(spec)...)
			}
			flat = append(flat, grp.keys...)
			if err := g.fb.Insert(key, val.EncodeRow(flat)); err != nil {
				return err
			}
		}
		delete(g.groups, h)
	}
	g.nGroups = 0
	return nil
}

func (g *HashGroupBy) decodeGroup(keys Row, stored Row) *group {
	grp := &group{keys: keys, aggs: make([]*aggState, len(g.Aggs))}
	for i, spec := range g.Aggs {
		grp.aggs[i] = decodeAggState(spec, stored[i*aggStateWidth:(i+1)*aggStateWidth])
	}
	return grp
}

// finalize materializes output rows from memory and the fallback tree.
func (g *HashGroupBy) finalize(ctx *Ctx) error {
	if g.fb != nil {
		// Push remaining in-memory groups through the fallback so each key
		// appears exactly once.
		if err := g.flushToFallback(ctx); err != nil {
			return err
		}
		it, err := g.fb.First()
		if err != nil {
			return err
		}
		defer it.Close()
		for ; it.Valid(); it.Next() {
			stored, err := val.DecodeRow(it.Value())
			if err != nil {
				return err
			}
			nKeys := len(stored) - len(g.Aggs)*aggStateWidth
			keys := stored[len(g.Aggs)*aggStateWidth:]
			if nKeys < 0 {
				return fmt.Errorf("exec: corrupt fallback group")
			}
			grp := g.decodeGroup(keys, stored)
			g.out = append(g.out, g.resultRow(grp))
		}
		if err := it.Err(); err != nil {
			return err
		}
		return nil
	}
	for _, grps := range g.groups {
		for _, grp := range grps {
			g.out = append(g.out, g.resultRow(grp))
		}
	}
	// Global aggregate with no input rows and no keys: one row of
	// identity aggregates.
	if len(g.Keys) == 0 && len(g.out) == 0 {
		grp := &group{aggs: make([]*aggState, len(g.Aggs))}
		for i, spec := range g.Aggs {
			grp.aggs[i] = newAggState(spec)
		}
		g.out = append(g.out, g.resultRow(grp))
	}
	return nil
}

func (g *HashGroupBy) resultRow(grp *group) Row {
	out := make(Row, 0, len(grp.keys)+len(g.Aggs))
	out = append(out, grp.keys...)
	for i, spec := range g.Aggs {
		out = append(out, grp.aggs[i].result(spec))
	}
	return out
}

func (g *HashGroupBy) NextBatch(ctx *Ctx, out *Batch) error {
	copyChunk(ctx, out, g.out, &g.pos)
	return nil
}

func (g *HashGroupBy) Close(ctx *Ctx) error {
	if ctx.Task != nil && g.registered {
		ctx.Task.Unregister(g)
		g.registered = false
	}
	g.groups = nil
	g.out = nil
	g.fb = nil
	if g.inputOpen {
		g.inputOpen = false
		return g.Input.Close(ctx)
	}
	return nil
}

// HashDistinct removes duplicate rows, streaming batch-at-a-time.
type HashDistinct struct {
	Input Operator
	seen  map[uint64][]Row
	in    Batch
	eof   bool
}

func (d *HashDistinct) Open(ctx *Ctx) error {
	d.seen = map[uint64][]Row{}
	d.in.Reset()
	d.eof = false
	return d.Input.Open(ctx)
}

func (d *HashDistinct) NextBatch(ctx *Ctx, out *Batch) error {
	out.Reset()
	target := ctx.BatchSize()
	for out.Len() < target && !d.eof {
		if err := ctx.Interrupted(); err != nil {
			return err
		}
		if err := d.Input.NextBatch(ctx, &d.in); err != nil {
			return err
		}
		if d.in.Len() == 0 {
			d.eof = true
			break
		}
		for _, row := range d.in.Rows {
			h := val.HashRow(row)
			dup := false
			for _, prev := range d.seen[h] {
				if rowsEqualNullSafe(prev, row) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			d.seen[h] = append(d.seen[h], row)
			out.Add(row)
		}
	}
	return nil
}

func (d *HashDistinct) Close(ctx *Ctx) error {
	d.seen = nil
	return d.Input.Close(ctx)
}
