// Package btree implements B+-trees over the buffer pool, used for table
// indexes and for the low-memory fallback structures of §4.3.
//
// Index statistics — number of distinct values, number of leaf pages, and
// a clustering statistic — are maintained in real time during operation
// (§3.2) and feed the optimizer's cost model directly; there is no
// UPDATE STATISTICS step to schedule.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"anywheredb/internal/buffer"
	"anywheredb/internal/page"
	"anywheredb/internal/store"
)

// Stats are the real-time index statistics of §3.2.
type Stats struct {
	Entries   atomic.Int64
	LeafPages atomic.Int64
	Height    atomic.Int64
	// Distinct approximates the number of distinct keys; maintained
	// incrementally by comparing each inserted key with its neighbour.
	Distinct atomic.Int64
	// ClusteredPairs / TotalPairs estimate how well index order matches
	// table order: a pair is clustered when adjacent index entries point
	// into the same table page.
	ClusteredPairs atomic.Int64
	TotalPairs     atomic.Int64
}

// Clustering returns the fraction of adjacent entries pointing to the same
// table page (1.0 for a fully clustered index).
func (s *Stats) Clustering() float64 {
	tp := s.TotalPairs.Load()
	if tp == 0 {
		return 1
	}
	return float64(s.ClusteredPairs.Load()) / float64(tp)
}

// Tree is a B+-tree. Keys and values are byte strings; keys compare
// bytewise (use val.EncodeKey for typed keys). Non-unique trees may hold
// duplicate keys. A Tree is safe for concurrent use via a coarse latch.
type Tree struct {
	pool  *buffer.Pool
	st    *store.Store
	file  store.FileID
	objID uint64

	mu   sync.RWMutex
	root store.PageID

	Stats Stats
}

const (
	flagLeaf = 1 << 0
	// maxCell keeps any two cells insertable into an empty page, so a split
	// always succeeds.
	maxCell = (page.Size - page.HeaderSize - 16) / 2
)

// entry is a decoded cell.
type entry struct {
	key []byte
	val []byte
}

func encodeEntry(e entry) []byte {
	b := binary.AppendUvarint(nil, uint64(len(e.key)))
	b = append(b, e.key...)
	b = binary.AppendUvarint(b, uint64(len(e.val)))
	b = append(b, e.val...)
	return b
}

func decodeEntry(c []byte) entry {
	kl, n := binary.Uvarint(c)
	c = c[n:]
	key := c[:kl]
	c = c[kl:]
	vl, n := binary.Uvarint(c)
	c = c[n:]
	return entry{key: key, val: c[:vl]}
}

// Create allocates an empty tree (a single leaf root) in the given file.
func Create(pool *buffer.Pool, st *store.Store, file store.FileID, objID uint64) (*Tree, error) {
	t := &Tree{pool: pool, st: st, file: file, objID: objID}
	f, err := pool.NewPage(file, page.TypeIndex)
	if err != nil {
		return nil, err
	}
	f.Data.SetOwner(objID)
	setFlags(f.Data, flagLeaf)
	t.root = f.ID
	pool.Unpin(f, true)
	t.Stats.LeafPages.Store(1)
	t.Stats.Height.Store(1)
	return t, nil
}

// Attach opens an existing tree rooted at root.
func Attach(pool *buffer.Pool, st *store.Store, root store.PageID, objID uint64) *Tree {
	t := &Tree{pool: pool, st: st, file: root.File(), objID: objID, root: root}
	t.rebuildStats()
	return t
}

// Root reports the current root page (persist it in the catalog).
func (t *Tree) Root() store.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

func setFlags(p page.Buf, f byte) { p[1] = f }
func flags(p page.Buf) byte       { return p[1] }
func isLeaf(p page.Buf) bool      { return flags(p)&flagLeaf != 0 }

// readEntries decodes a node's cells in slot order (slot order is key
// order by construction). Entries are copied out of the page: callers
// rewrite the page (which zeroes it) while still holding them.
func readEntries(p page.Buf) []entry {
	n := p.NumSlots()
	es := make([]entry, 0, n)
	for i := 0; i < n; i++ {
		c := p.Cell(i)
		if c != nil {
			e := decodeEntry(c)
			es = append(es, entry{
				key: append([]byte(nil), e.key...),
				val: append([]byte(nil), e.val...),
			})
		}
	}
	return es
}

// writeEntries rewrites a node with the given entries in order, preserving
// type, flags, next pointer, and owner.
func writeEntries(p page.Buf, es []entry) error {
	fl := flags(p)
	next := p.Next()
	owner := p.Owner()
	p.Init(page.TypeIndex)
	setFlags(p, fl)
	p.SetNext(next)
	p.SetOwner(owner)
	for _, e := range es {
		if p.Insert(encodeEntry(e)) < 0 {
			return fmt.Errorf("btree: node overflow writing %d entries", len(es))
		}
	}
	return nil
}

func nodeBytes(es []entry) int {
	n := 0
	for _, e := range es {
		n += len(encodeEntry(e)) + 4
	}
	return n
}

// Insert adds a (key, value) pair. Duplicate keys are permitted.
func (t *Tree) Insert(key, value []byte) error {
	if len(key)+len(value) > maxCell {
		return fmt.Errorf("btree: entry too large (%d bytes)", len(key)+len(value))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, err := t.insertAt(t.root, key, value)
	if err != nil {
		return err
	}
	if split != nil {
		// Root split: new internal root with the old root as leftmost child.
		f, err := t.pool.NewPage(t.file, page.TypeIndex)
		if err != nil {
			return err
		}
		f.Data.SetOwner(t.objID)
		setFlags(f.Data, 0)
		f.Data.SetNext(uint64(t.root)) // leftmost child
		if f.Data.Insert(encodeEntry(entry{key: split.sepKey, val: pageIDBytes(split.right)})) < 0 {
			t.pool.Unpin(f, true)
			return fmt.Errorf("btree: root split insert failed")
		}
		t.root = f.ID
		t.pool.Unpin(f, true)
		t.Stats.Height.Add(1)
	}
	return nil
}

type splitResult struct {
	sepKey []byte
	right  store.PageID
}

func pageIDBytes(id store.PageID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

func pageIDFromBytes(b []byte) store.PageID {
	return store.PageID(binary.LittleEndian.Uint64(b))
}

// childFor finds the child page covering key in an internal node.
func childFor(es []entry, next uint64, key []byte) store.PageID {
	child := store.PageID(next)
	for _, e := range es {
		if bytes.Compare(e.key, key) <= 0 {
			child = pageIDFromBytes(e.val)
		} else {
			break
		}
	}
	return child
}

func (t *Tree) insertAt(id store.PageID, key, value []byte) (*splitResult, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	f.Lock()
	leaf := isLeaf(f.Data)
	if !leaf {
		es := readEntries(f.Data)
		child := childFor(es, f.Data.Next(), key)
		f.Unlock()
		t.pool.Unpin(f, false)
		split, err := t.insertAt(child, key, value)
		if err != nil || split == nil {
			return nil, err
		}
		// Insert separator into this node.
		f, err = t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		f.Lock()
		es = readEntries(f.Data)
		sep := entry{key: split.sepKey, val: pageIDBytes(split.right)}
		es = insertSorted(es, sep)
		res, err := t.writeMaybeSplit(f, es, false)
		f.Unlock()
		t.pool.Unpin(f, true)
		return res, err
	}

	// Leaf insert.
	es := readEntries(f.Data)
	e := entry{key: key, val: value}
	pos := insertPos(es, key)
	// Real-time statistics: distinct keys and clustering.
	t.noteInsert(es, pos, e)
	es = append(es, entry{})
	copy(es[pos+1:], es[pos:])
	es[pos] = e
	res, err := t.writeMaybeSplit(f, es, true)
	f.Unlock()
	t.pool.Unpin(f, true)
	if err == nil {
		t.Stats.Entries.Add(1)
	}
	return res, err
}

// insertPos returns the position of the first entry with key > k (upper
// bound), so duplicates append after existing equals.
func insertPos(es []entry, k []byte) int {
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(es[mid].key, k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func insertSorted(es []entry, e entry) []entry {
	pos := insertPos(es, e.key)
	es = append(es, entry{})
	copy(es[pos+1:], es[pos:])
	es[pos] = e
	return es
}

func (t *Tree) noteInsert(es []entry, pos int, e entry) {
	distinct := true
	if pos > 0 && bytes.Equal(es[pos-1].key, e.key) {
		distinct = false
	}
	if pos < len(es) && bytes.Equal(es[pos].key, e.key) {
		distinct = false
	}
	if distinct {
		t.Stats.Distinct.Add(1)
	}
	// Clustering: compare the table page of the new entry's RID with its
	// predecessor's. Values that are not RIDs simply skew toward clustered.
	if pos > 0 {
		t.Stats.TotalPairs.Add(1)
		if ridPage(es[pos-1].val) == ridPage(e.val) {
			t.Stats.ClusteredPairs.Add(1)
		}
	}
}

func ridPage(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(v) >> 8 // ignore slot byte-ish low bits
}

// writeMaybeSplit writes entries back, splitting the node if they do not
// fit. The caller holds the frame latch and unpins afterwards.
func (t *Tree) writeMaybeSplit(f *buffer.Frame, es []entry, leaf bool) (*splitResult, error) {
	if nodeBytes(es) <= page.Size-page.HeaderSize-8 {
		return nil, writeEntries(f.Data, es)
	}
	// Split: left keeps the first half, right gets the rest.
	mid := len(es) / 2
	leftEs, rightEs := es[:mid], es[mid:]

	rf, err := t.pool.NewPage(t.file, page.TypeIndex)
	if err != nil {
		return nil, err
	}
	rf.Data.SetOwner(t.objID)
	var sepKey []byte
	if leaf {
		setFlags(rf.Data, flagLeaf)
		// Maintain the leaf sibling chain.
		rf.Data.SetNext(f.Data.Next())
		sepKey = append([]byte(nil), rightEs[0].key...)
		if err := writeEntries(rf.Data, rightEs); err != nil {
			t.pool.Unpin(rf, true)
			return nil, err
		}
		if err := writeEntries(f.Data, leftEs); err != nil {
			t.pool.Unpin(rf, true)
			return nil, err
		}
		f.Data.SetNext(uint64(rf.ID))
		t.Stats.LeafPages.Add(1)
	} else {
		setFlags(rf.Data, 0)
		// The middle entry's key moves up; its child becomes the right
		// node's leftmost child.
		sepKey = append([]byte(nil), rightEs[0].key...)
		rf.Data.SetNext(uint64(pageIDFromBytes(rightEs[0].val)))
		if err := writeEntries(rf.Data, rightEs[1:]); err != nil {
			t.pool.Unpin(rf, true)
			return nil, err
		}
		if err := writeEntries(f.Data, leftEs); err != nil {
			t.pool.Unpin(rf, true)
			return nil, err
		}
	}
	right := rf.ID
	t.pool.Unpin(rf, true)
	return &splitResult{sepKey: sepKey, right: right}, nil
}

// Delete removes one entry matching key and (if value is non-nil) value.
// It reports whether an entry was removed. Nodes are allowed to underflow;
// empty leaves stay in the chain until the tree is rebuilt.
func (t *Tree) Delete(key, value []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root
	// Descend to the leaf.
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			return false, err
		}
		f.Lock()
		if isLeaf(f.Data) {
			es := readEntries(f.Data)
			for i, e := range es {
				if bytes.Equal(e.key, key) && (value == nil || bytes.Equal(e.val, value)) {
					es = append(es[:i], es[i+1:]...)
					err := writeEntries(f.Data, es)
					f.Unlock()
					t.pool.Unpin(f, true)
					if err == nil {
						t.Stats.Entries.Add(-1)
					}
					return true, err
				}
				if bytes.Compare(e.key, key) > 0 {
					break
				}
			}
			f.Unlock()
			t.pool.Unpin(f, false)
			return false, nil
		}
		es := readEntries(f.Data)
		next := childFor(es, f.Data.Next(), key)
		f.Unlock()
		t.pool.Unpin(f, false)
		id = next
	}
}

// Search returns the value of the first entry with exactly this key.
func (t *Tree) Search(key []byte) ([]byte, bool, error) {
	it, err := t.Seek(key)
	if err != nil {
		return nil, false, err
	}
	defer it.Close()
	if !it.Valid() || !bytes.Equal(it.Key(), key) {
		return nil, false, nil
	}
	return append([]byte(nil), it.Value()...), true, nil
}

// Iterator walks leaf entries in key order.
type Iterator struct {
	t       *Tree
	frame   *buffer.Frame
	entries []entry
	pos     int
	err     error
}

// Seek positions an iterator at the first entry with key ≥ k.
func (t *Tree) Seek(k []byte) (*Iterator, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			return nil, err
		}
		f.RLock()
		if isLeaf(f.Data) {
			es := readEntries(f.Data)
			// First entry >= k (lower bound).
			pos := 0
			for pos < len(es) && bytes.Compare(es[pos].key, k) < 0 {
				pos++
			}
			it := &Iterator{t: t, frame: f, entries: copyEntries(es), pos: pos}
			f.RUnlock()
			if pos >= len(es) {
				it.advancePage()
			}
			return it, nil
		}
		es := readEntries(f.Data)
		next := childFor(es, f.Data.Next(), k)
		f.RUnlock()
		t.pool.Unpin(f, false)
		id = next
	}
}

// First positions an iterator at the smallest key.
func (t *Tree) First() (*Iterator, error) { return t.Seek(nil) }

func copyEntries(es []entry) []entry {
	out := make([]entry, len(es))
	for i, e := range es {
		out[i] = entry{key: append([]byte(nil), e.key...), val: append([]byte(nil), e.val...)}
	}
	return out
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.err == nil && it.frame != nil && it.pos < len(it.entries) }

// Key returns the current entry's key.
func (it *Iterator) Key() []byte { return it.entries[it.pos].key }

// Value returns the current entry's value.
func (it *Iterator) Value() []byte { return it.entries[it.pos].val }

// Err reports any error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Next advances to the following entry, crossing leaf pages via the
// sibling chain.
func (it *Iterator) Next() {
	if !it.Valid() {
		return
	}
	it.pos++
	if it.pos >= len(it.entries) {
		it.advancePage()
	}
}

func (it *Iterator) advancePage() {
	for it.frame != nil {
		it.frame.RLock()
		next := it.frame.Data.Next()
		it.frame.RUnlock()
		it.t.pool.Unpin(it.frame, false)
		it.frame = nil
		if next == 0 {
			return
		}
		f, err := it.t.pool.Get(store.PageID(next))
		if err != nil {
			it.err = err
			return
		}
		f.RLock()
		es := copyEntries(readEntries(f.Data))
		f.RUnlock()
		it.frame = f
		it.entries = es
		it.pos = 0
		if len(es) > 0 {
			return
		}
		// Empty leaf (all entries deleted): keep walking.
	}
}

// Close releases the iterator's pin.
func (it *Iterator) Close() {
	if it.frame != nil {
		it.t.pool.Unpin(it.frame, false)
		it.frame = nil
	}
}

// rebuildStats recomputes statistics by walking the tree (used by Attach).
func (t *Tree) rebuildStats() {
	t.Stats = Stats{}
	it, err := t.First()
	if err != nil {
		return
	}
	defer it.Close()
	var prevKey, prevVal []byte
	leaves := map[store.PageID]bool{}
	for ; it.Valid(); it.Next() {
		t.Stats.Entries.Add(1)
		if prevKey == nil || !bytes.Equal(prevKey, it.Key()) {
			t.Stats.Distinct.Add(1)
		}
		if prevKey != nil {
			t.Stats.TotalPairs.Add(1)
			if ridPage(prevVal) == ridPage(it.Value()) {
				t.Stats.ClusteredPairs.Add(1)
			}
		}
		prevKey = append(prevKey[:0], it.Key()...)
		prevVal = append(prevVal[:0], it.Value()...)
		if it.frame != nil {
			leaves[it.frame.ID] = true
		}
	}
	if len(leaves) == 0 {
		t.Stats.LeafPages.Store(1)
	} else {
		t.Stats.LeafPages.Store(int64(len(leaves)))
	}
	// Height: descend leftmost.
	h := int64(1)
	id := t.root
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			break
		}
		f.RLock()
		leaf := isLeaf(f.Data)
		next := f.Data.Next()
		f.RUnlock()
		t.pool.Unpin(f, false)
		if leaf {
			break
		}
		h++
		id = store.PageID(next)
	}
	t.Stats.Height.Store(h)
}
