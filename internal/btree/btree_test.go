package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"anywheredb/internal/buffer"
	"anywheredb/internal/store"
)

func newTree(t *testing.T, frames int) (*Tree, *buffer.Pool, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	pool := buffer.New(st, 4, frames, frames)
	tr, err := Create(pool, st, store.MainFile, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr, pool, st
}

func k(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func v(i int) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _, _ := newTree(t, 64)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		got, ok, err := tr.Search(k(i))
		if err != nil || !ok {
			t.Fatalf("search %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, v(i)) {
			t.Fatalf("value mismatch for %d", i)
		}
	}
	if _, ok, _ := tr.Search([]byte("missing")); ok {
		t.Fatal("found a missing key")
	}
}

func TestSplitsAndOrder(t *testing.T) {
	tr, _, _ := newTree(t, 256)
	// Insert shuffled keys to force many splits at several levels.
	n := 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Stats.Height.Load() < 2 {
		t.Fatalf("height %d, expected splits", tr.Stats.Height.Load())
	}
	// Full scan returns every key in order.
	it, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var prev []byte
	count := 0
	for ; it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) > 0 {
			t.Fatal("scan out of order")
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if count != n {
		t.Fatalf("scan saw %d entries, want %d", count, n)
	}
	if got := tr.Stats.Entries.Load(); got != int64(n) {
		t.Fatalf("Stats.Entries %d, want %d", got, n)
	}
}

func TestSeekRange(t *testing.T) {
	tr, _, _ := newTree(t, 128)
	for i := 0; i < 1000; i += 2 { // even keys only
		tr.Insert(k(i), v(i))
	}
	// Seek to an absent odd key: lands on the next even key.
	it, err := tr.Seek(k(501))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Valid() || !bytes.Equal(it.Key(), k(502)) {
		t.Fatalf("seek landed on %q", it.Key())
	}
	// Range scan [502, 520): 9 entries.
	count := 0
	for ; it.Valid() && bytes.Compare(it.Key(), k(520)) < 0; it.Next() {
		count++
	}
	if count != 9 {
		t.Fatalf("range count %d, want 9", count)
	}
}

func TestSeekPastEnd(t *testing.T) {
	tr, _, _ := newTree(t, 64)
	tr.Insert(k(1), v(1))
	it, err := tr.Seek([]byte("zzzz"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr, _, _ := newTree(t, 128)
	for i := 0; i < 10; i++ {
		tr.Insert([]byte("dup"), v(i))
	}
	tr.Insert([]byte("eee"), v(99))
	it, _ := tr.Seek([]byte("dup"))
	defer it.Close()
	count := 0
	for ; it.Valid() && bytes.Equal(it.Key(), []byte("dup")); it.Next() {
		count++
	}
	if count != 10 {
		t.Fatalf("duplicate count %d, want 10", count)
	}
	if got := tr.Stats.Distinct.Load(); got != 2 {
		t.Fatalf("distinct %d, want 2", got)
	}
}

func TestDelete(t *testing.T) {
	tr, _, _ := newTree(t, 128)
	for i := 0; i < 500; i++ {
		tr.Insert(k(i), v(i))
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(k(i), nil)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Deleted keys gone, survivors intact.
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Search(k(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v, want %v", i, ok, want)
		}
	}
	if got := tr.Stats.Entries.Load(); got != 250 {
		t.Fatalf("entries after deletes %d, want 250", got)
	}
	// Delete by key+value: only the matching pair goes.
	tr.Insert([]byte("dv"), v(1))
	tr.Insert([]byte("dv"), v(2))
	ok, _ := tr.Delete([]byte("dv"), v(1))
	if !ok {
		t.Fatal("delete by value failed")
	}
	got, ok, _ := tr.Search([]byte("dv"))
	if !ok || !bytes.Equal(got, v(2)) {
		t.Fatal("wrong duplicate deleted")
	}
	if ok, _ := tr.Delete([]byte("absent"), nil); ok {
		t.Fatal("delete of absent key reported success")
	}
}

func TestScanAcrossEmptiedLeaves(t *testing.T) {
	tr, _, _ := newTree(t, 256)
	for i := 0; i < 2000; i++ {
		tr.Insert(k(i), v(i))
	}
	// Empty out a middle stretch entirely.
	for i := 500; i < 1500; i++ {
		tr.Delete(k(i), nil)
	}
	it, _ := tr.Seek(k(400))
	defer it.Close()
	count := 0
	for ; it.Valid(); it.Next() {
		count++
	}
	if count != 100+500 {
		t.Fatalf("scan across emptied leaves saw %d, want 600", count)
	}
}

func TestEntryTooLarge(t *testing.T) {
	tr, _, _ := newTree(t, 64)
	if err := tr.Insert(make([]byte, 4096), nil); err == nil {
		t.Fatal("oversized entry should be rejected")
	}
}

func TestClusteringStat(t *testing.T) {
	tr, _, _ := newTree(t, 128)
	// RIDs on the same "page" (same high bits): clustered.
	for i := 0; i < 100; i++ {
		var rid [12]byte
		binary.LittleEndian.PutUint64(rid[:], uint64(i/50)<<8) // 2 pages
		tr.Insert(k(i), rid[:])
	}
	if c := tr.Stats.Clustering(); c < 0.9 {
		t.Fatalf("clustering %g, want ~1 for sequential rids", c)
	}

	tr2, _, _ := newTree(t, 128)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		var rid [12]byte
		binary.LittleEndian.PutUint64(rid[:], uint64(rng.Intn(100))<<8)
		tr2.Insert(k(i), rid[:])
	}
	if c := tr2.Stats.Clustering(); c > 0.5 {
		t.Fatalf("clustering %g for random rids, want low", c)
	}
}

func TestAttachRebuildsStats(t *testing.T) {
	tr, pool, st := newTree(t, 256)
	for i := 0; i < 1000; i++ {
		tr.Insert(k(i), v(i))
	}
	root := tr.Root()
	at := Attach(pool, st, root, 1)
	if at.Stats.Entries.Load() != 1000 {
		t.Fatalf("attached entries %d", at.Stats.Entries.Load())
	}
	if at.Stats.Distinct.Load() != 1000 {
		t.Fatalf("attached distinct %d", at.Stats.Distinct.Load())
	}
	if at.Stats.Height.Load() != tr.Stats.Height.Load() {
		t.Fatalf("attached height %d, want %d", at.Stats.Height.Load(), tr.Stats.Height.Load())
	}
	got, ok, err := at.Search(k(512))
	if err != nil || !ok || !bytes.Equal(got, v(512)) {
		t.Fatal("attached tree search failed")
	}
}

func TestLeafPageStat(t *testing.T) {
	tr, _, _ := newTree(t, 256)
	for i := 0; i < 3000; i++ {
		tr.Insert(k(i), v(i))
	}
	if lp := tr.Stats.LeafPages.Load(); lp < 10 {
		t.Fatalf("leaf pages %d, expected many after 3000 inserts", lp)
	}
}

// Property test: a random mix of inserts and deletes always matches a
// reference map.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st, _ := store.Open(store.Options{})
		defer st.Close()
		pool := buffer.New(st, 4, 128, 128)
		tr, err := Create(pool, st, store.MainFile, 1)
		if err != nil {
			return false
		}
		ref := map[string]string{}
		for op := 0; op < 400; op++ {
			key := fmt.Sprintf("k%04d", rng.Intn(200))
			if rng.Intn(3) != 0 {
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				if old, ok := ref[key]; ok {
					tr.Delete([]byte(key), []byte(old))
				}
				ref[key] = val
				if err := tr.Insert([]byte(key), []byte(val)); err != nil {
					return false
				}
			} else {
				if old, ok := ref[key]; ok {
					ok2, _ := tr.Delete([]byte(key), []byte(old))
					if !ok2 {
						return false
					}
					delete(ref, key)
				}
			}
		}
		// Verify contents and order.
		var keys []string
		for kk := range ref {
			keys = append(keys, kk)
		}
		sort.Strings(keys)
		it, err := tr.First()
		if err != nil {
			return false
		}
		defer it.Close()
		for _, kk := range keys {
			if !it.Valid() {
				return false
			}
			if string(it.Key()) != kk || string(it.Value()) != ref[kk] {
				return false
			}
			it.Next()
		}
		return !it.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
