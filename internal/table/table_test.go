package table

import (
	"errors"
	"fmt"
	"testing"

	"anywheredb/internal/buffer"
	"anywheredb/internal/store"
	"anywheredb/internal/txn"
	"anywheredb/internal/val"
	"anywheredb/internal/wal"
)

func setup(t *testing.T) (*Table, *buffer.Pool, *store.Store, *txn.Manager) {
	t.Helper()
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	pool := buffer.New(st, 8, 256, 512)
	log, _ := wal.Open("")
	tm := txn.NewManager(log, nil)
	tbl, err := Create(pool, st, store.MainFile, 100, "emp", []Column{
		{Name: "id", Kind: val.KInt},
		{Name: "name", Kind: val.KStr},
		{Name: "salary", Kind: val.KDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, pool, st, tm
}

func row(id int64, name string, sal float64) []val.Value {
	return []val.Value{val.NewInt(id), val.NewStr(name), val.NewDouble(sal)}
}

func TestInsertGetScan(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	var rids []RID
	for i := 0; i < 500; i++ {
		rid, err := tbl.Insert(tx, row(int64(i), fmt.Sprintf("emp%d", i), float64(i)*100))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx.Commit()

	if tbl.RowCount() != 500 {
		t.Fatalf("rows %d", tbl.RowCount())
	}
	if tbl.PageCount() < 2 {
		t.Fatalf("pages %d, expected chain growth", tbl.PageCount())
	}
	got, err := tbl.Get(rids[123])
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I != 123 || got[1].S != "emp123" {
		t.Fatalf("row: %v", got)
	}

	seen := 0
	err = tbl.Scan(func(rid RID, r []val.Value) (bool, error) {
		seen++
		return true, nil
	})
	if err != nil || seen != 500 {
		t.Fatalf("scan saw %d err=%v", seen, err)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 50; i++ {
		tbl.Insert(tx, row(int64(i), "x", 1))
	}
	tx.Commit()
	seen := 0
	tbl.Scan(func(RID, []val.Value) (bool, error) {
		seen++
		return seen < 10, nil
	})
	if seen != 10 {
		t.Fatalf("early stop saw %d", seen)
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	rid, _ := tbl.Insert(tx, row(1, "alice", 100))
	rid2, _ := tbl.Insert(tx, row(2, "bob", 200))
	tx.Commit()

	tx = tm.Begin()
	if err := tbl.Delete(tx, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row readable: %v", err)
	}
	newRID, err := tbl.Update(tx, rid2, row(2, "robert", 250))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(newRID)
	if got[1].S != "robert" || got[2].F != 250 {
		t.Fatalf("updated row %v", got)
	}
	tx.Commit()
	if tbl.RowCount() != 1 {
		t.Fatalf("rows %d", tbl.RowCount())
	}
}

func TestRollbackRestoresRows(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	ridKeep, _ := tbl.Insert(tx, row(1, "keep", 1))
	tx.Commit()

	tx = tm.Begin()
	tbl.Insert(tx, row(2, "phantom", 2))
	tbl.Delete(tx, ridKeep)
	tx.Rollback()

	if tbl.RowCount() != 1 {
		t.Fatalf("rows after rollback %d, want 1", tbl.RowCount())
	}
	got, err := tbl.Get(ridKeep)
	if err != nil || got[1].S != "keep" {
		t.Fatalf("original row lost: %v %v", got, err)
	}
	// The phantom must be gone from scans.
	tbl.Scan(func(_ RID, r []val.Value) (bool, error) {
		if r[1].S == "phantom" {
			t.Fatal("rolled-back insert visible")
		}
		return true, nil
	})
}

func TestRollbackUpdate(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	rid, _ := tbl.Insert(tx, row(1, "orig", 100))
	tx.Commit()

	tx = tm.Begin()
	tbl.Update(tx, rid, row(1, "changed", 999))
	tx.Rollback()

	got, err := tbl.Get(rid)
	if err != nil || got[1].S != "orig" || got[2].F != 100 {
		t.Fatalf("update not rolled back: %v %v", got, err)
	}
}

func TestHistogramsMaintained(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 1000; i++ {
		tbl.Insert(tx, row(int64(i%10), "n", 1))
	}
	tx.Commit()
	// Column 0 has 10 distinct values, each 10%.
	sel := tbl.Hists[0].SelEq(val.NewInt(3))
	if sel < 0.05 || sel > 0.2 {
		t.Fatalf("histogram selectivity %g, want ~0.1", sel)
	}
	if tbl.Hists[0].Total() != 1000 {
		t.Fatalf("histogram total %g", tbl.Hists[0].Total())
	}
}

func TestIndexMaintenance(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 200; i++ {
		tbl.Insert(tx, row(int64(i), fmt.Sprintf("n%03d", i), float64(i)))
	}
	tx.Commit()

	ix, err := tbl.AddIndex(200, "emp_id", []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Tree.Stats.Entries.Load() != 200 {
		t.Fatalf("index entries %d", ix.Tree.Stats.Entries.Load())
	}
	// Probe through the index.
	key := ix.Key(row(57, "", 0))
	rb, found, err := ix.Tree.Search(key)
	if err != nil || !found {
		t.Fatal("index probe failed")
	}
	got, err := tbl.Get(RIDFromBytes(rb))
	if err != nil || got[0].I != 57 {
		t.Fatalf("index probe row %v %v", got, err)
	}

	// New inserts maintain the index.
	tx = tm.Begin()
	tbl.Insert(tx, row(999, "new", 1))
	tx.Commit()
	if _, found, _ := ix.Tree.Search(ix.Key(row(999, "", 0))); !found {
		t.Fatal("index not maintained on insert")
	}

	// Unique violation.
	tx = tm.Begin()
	if _, err := tbl.Insert(tx, row(999, "dup", 1)); !errors.Is(err, ErrUnique) {
		t.Fatalf("unique violation not detected: %v", err)
	}
	tx.Rollback()

	// Delete maintains the index.
	tx = tm.Begin()
	rb, _, _ = ix.Tree.Search(ix.Key(row(57, "", 0)))
	tbl.Delete(tx, RIDFromBytes(rb))
	tx.Commit()
	if _, found, _ := ix.Tree.Search(ix.Key(row(57, "", 0))); found {
		t.Fatal("index entry survives delete")
	}

	// Update that changes the key maintains the index.
	tx = tm.Begin()
	rb, _, _ = ix.Tree.Search(ix.Key(row(58, "", 0)))
	tbl.Update(tx, RIDFromBytes(rb), row(5800, "moved", 58))
	tx.Commit()
	if _, found, _ := ix.Tree.Search(ix.Key(row(58, "", 0))); found {
		t.Fatal("old key survives update")
	}
	if _, found, _ := ix.Tree.Search(ix.Key(row(5800, "", 0))); !found {
		t.Fatal("new key missing after update")
	}
}

func TestAddIndexBuildsStatistics(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 1000; i++ {
		tbl.Insert(tx, row(int64(i%4), "s", 0))
	}
	tx.Commit()
	// Wipe the histogram, then CREATE INDEX must rebuild it.
	tbl.Hists[0] = nil
	if _, err := tbl.AddIndex(201, "by_id", []int{0}, false); err != nil {
		t.Fatal(err)
	}
	if tbl.Hists[0] == nil || tbl.Hists[0].Total() == 0 {
		t.Fatal("CREATE INDEX did not rebuild statistics")
	}
	sel := tbl.Hists[0].SelEq(val.NewInt(2))
	if sel < 0.15 || sel > 0.35 {
		t.Fatalf("rebuilt selectivity %g, want ~0.25", sel)
	}
}

func TestRebuildStatisticsStrings(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 100; i++ {
		name := "plain widget"
		if i < 10 {
			name = "deluxe gadget"
		}
		tbl.Insert(tx, row(int64(i), name, 0))
	}
	tx.Commit()
	if err := tbl.RebuildStatistics(); err != nil {
		t.Fatal(err)
	}
	ss := tbl.StrStats[1]
	if ss == nil {
		t.Fatal("no string stats built")
	}
	sel, ok := ss.EstimateLike("%deluxe%")
	if !ok || sel < 0.05 || sel > 0.15 {
		t.Fatalf("LIKE %%deluxe%% sel=%g ok=%v, want ~0.1", sel, ok)
	}
}

func TestResidentFraction(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 2000; i++ {
		tbl.Insert(tx, row(int64(i), fmt.Sprintf("longish-name-%06d", i), float64(i)))
	}
	tx.Commit()
	fr := tbl.ResidentFraction()
	if fr <= 0 || fr > 1 {
		t.Fatalf("resident fraction %g", fr)
	}
}

func TestAttachRecounts(t *testing.T) {
	tbl, pool, st, tm := setup(t)
	tx := tm.Begin()
	for i := 0; i < 300; i++ {
		tbl.Insert(tx, row(int64(i), "r", 0))
	}
	tx.Commit()
	pool.FlushAll()

	at, err := Attach(pool, st, tbl.ID, tbl.Name, tbl.Columns, tbl.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	if at.RowCount() != 300 {
		t.Fatalf("attached rows %d", at.RowCount())
	}
	if at.PageCount() != tbl.PageCount() {
		t.Fatalf("attached pages %d, want %d", at.PageCount(), tbl.PageCount())
	}
}

func TestErrors(t *testing.T) {
	tbl, _, _, tm := setup(t)
	tx := tm.Begin()
	defer tx.Rollback()
	if _, err := tbl.Insert(tx, []val.Value{val.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch not detected")
	}
	big := make([]byte, 5000)
	if _, err := tbl.Insert(tx, []val.Value{val.NewInt(1), val.NewStr(string(big)), val.NewDouble(0)}); !errors.Is(err, ErrRowTooLarge) {
		t.Fatalf("oversized row: %v", err)
	}
	if err := tbl.Delete(tx, RID{Page: tbl.FirstPage(), Slot: 99}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing delete: %v", err)
	}
	if tbl.ColumnIndex("nope") != -1 || tbl.ColumnIndex("salary") != 2 {
		t.Fatal("ColumnIndex")
	}
}
