package table

import (
	"encoding/binary"
	"errors"
	"fmt"

	"anywheredb/internal/colseg"
	"anywheredb/internal/page"
	"anywheredb/internal/store"
	"anywheredb/internal/txn"
	"anywheredb/internal/val"
	"anywheredb/internal/wal"
)

// Columnar segment support. A table may carry an immutable set of sealed
// column segments (internal/colseg) covering a prefix of its heap chain;
// the remainder of the chain — the delta tail — holds rows inserted after
// the build and is scanned alongside the segments. The heap is always
// authoritative: any update or delete invalidates the segments (logging a
// RecColSegDrop so the invalidation survives a crash) and scans fall back
// to the heap until the reorganizer or an explicit ALTER rebuilds them.

// ErrBuildInvalidated is returned when a concurrent update/delete races a
// columnar build; the caller may simply retry later.
var ErrBuildInvalidated = errors.New("table: columnar build invalidated by concurrent write")

// ColState is an immutable snapshot of a table's columnar layout.
type ColState struct {
	// Segs are the sealed segments, covering every heap page before
	// DeltaStart in chain order.
	Segs []*colseg.Segment
	// DeltaStart is the first heap page NOT covered by Segs.
	DeltaStart store.PageID
	// SegHead is the head of the persisted blob chain (0 = memory only).
	SegHead store.PageID
}

// Columnar returns the current columnar snapshot, or nil when the table is
// row-only. The snapshot is immutable; a concurrent invalidation does not
// disturb a scan already holding it (same latch-level consistency as the
// heap scan).
func (t *Table) Columnar() *ColState { return t.colstate.Load() }

// SegmentCount reports the number of sealed segments (0 when row-only).
func (t *Table) SegmentCount() int {
	if cs := t.colstate.Load(); cs != nil {
		return len(cs.Segs)
	}
	return 0
}

// invalidateColumnar drops the columnar snapshot because a row covered by
// it may be about to change. When tx is non-nil the drop is WAL-logged
// BEFORE the caller logs its data record, so recovery can never replay the
// data change yet keep the stale segments. Dropping is conservative — a
// loser transaction's drop also sticks — which costs the acceleration, not
// correctness.
func (t *Table) invalidateColumnar(tx *txn.Txn) {
	if t.colstate.Load() == nil {
		t.mu.Lock()
		t.colGen++
		t.mu.Unlock()
		return
	}
	if tx != nil {
		tx.Log(&wal.Record{Type: wal.RecColSegDrop, Table: t.ID})
	}
	t.mu.Lock()
	t.colGen++
	t.colstate.Store(nil)
	t.mu.Unlock()
	if t.OnColsegDrop != nil {
		t.OnColsegDrop()
	}
}

// BuildColumnar seals the current heap into column segments. The heap
// chain is first "sealed" by appending a fresh, empty tail page: inserts
// only ever target the chain tail, so no later insert can land in — or
// reuse a freed slot of — any page before the boundary. The sealed prefix
// is then scanned into segments without holding the table mutex; a
// concurrent update/delete bumps the mutation generation and the build
// abandons its result instead of installing a stale snapshot.
//
// When tx is non-nil the chain growth is logged (RecPageLink) exactly as a
// transactional insert would, so crash recovery rebuilds the linkage; when
// persist is set the encoded segments are also written to a chain of
// colseg pages through the buffer pool, covered by the pool's page-image
// write guard like every other page.
func (t *Table) BuildColumnar(tx *txn.Txn, persist bool) (*ColState, error) {
	t.mu.Lock()
	gen := t.colGen
	first := t.first
	f, err := t.pool.Get(t.last)
	if err != nil {
		t.mu.Unlock()
		return nil, err
	}
	nf, err := t.pool.NewPage(t.file, page.TypeTable)
	if err != nil {
		t.pool.Unpin(f, false)
		t.mu.Unlock()
		return nil, err
	}
	nf.Data.SetOwner(t.ID)
	f.Lock()
	f.Data.SetNext(uint64(nf.ID))
	f.MarkDirty()
	oldTail := f.ID
	f.Unlock()
	t.pool.Unpin(f, true)
	if tx != nil {
		tx.Log(&wal.Record{Type: wal.RecPageLink, Table: t.ID, Page: oldTail, After: pageIDBytes(nf.ID)})
	}
	delta := nf.ID
	t.last = nf.ID
	t.pages.Add(1)
	t.pool.Unpin(nf, true)
	t.mu.Unlock()

	kinds := make([]val.Kind, len(t.Columns))
	for i, c := range t.Columns {
		kinds[i] = c.Kind
	}
	b := colseg.NewBuilder(kinds, t.SegmentRows)
	if err := t.scanRange(first, delta, nil, func(_ RID, row []val.Value) (bool, error) {
		b.Add(row)
		return true, nil
	}); err != nil {
		return nil, err
	}
	cs := &ColState{Segs: b.Finish(), DeltaStart: delta}
	if persist {
		head, err := t.writeSegChain(colseg.EncodeSegments(cs.Segs))
		if err != nil {
			return nil, err
		}
		cs.SegHead = head
	}

	t.mu.Lock()
	if t.colGen != gen {
		t.mu.Unlock()
		if cs.SegHead != 0 {
			t.freeSegChain(cs.SegHead)
		}
		return nil, ErrBuildInvalidated
	}
	t.colstate.Store(cs)
	t.mu.Unlock()
	return cs, nil
}

// DropColumnar removes the columnar snapshot and frees its persisted blob
// chain (ALTER TABLE ... STORE ROW). Unlike the hot-path invalidation it
// reclaims the pages eagerly.
func (t *Table) DropColumnar(tx *txn.Txn) {
	cs := t.colstate.Load()
	t.invalidateColumnar(tx)
	if cs != nil && cs.SegHead != 0 {
		t.freeSegChain(cs.SegHead)
	}
}

// AttachColumnar restores a persisted columnar snapshot at attach time.
// It is strictly validating: a bad blob, a broken chain, or a delta
// boundary that is no longer part of the heap chain silently degrades the
// table to row-only (the heap is authoritative; the segments are only an
// acceleration structure).
func (t *Table) AttachColumnar(segHead, deltaStart store.PageID) error {
	if segHead == 0 || deltaStart == 0 {
		return fmt.Errorf("table %s: no persisted segments", t.Name)
	}
	// The boundary must be reachable from the chain head, otherwise the
	// catalog entry is stale.
	found := false
	t.mu.Lock()
	cur := t.first
	t.mu.Unlock()
	for cur != 0 {
		if cur == deltaStart {
			found = true
			break
		}
		f, err := t.pool.Get(cur)
		if err != nil {
			return err
		}
		f.RLock()
		next := f.Data.Next()
		f.RUnlock()
		t.pool.Unpin(f, false)
		cur = store.PageID(next)
	}
	if !found {
		return fmt.Errorf("table %s: delta boundary %v not in heap chain", t.Name, deltaStart)
	}
	blob, err := t.readSegChain(segHead)
	if err != nil {
		return err
	}
	segs, err := colseg.DecodeSegments(blob)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.colstate.Store(&ColState{Segs: segs, DeltaStart: deltaStart, SegHead: segHead})
	t.mu.Unlock()
	return nil
}

// segChunk is the blob payload per colseg page (one cell, headroom like
// the catalog chain).
const segChunk = page.Size - page.HeaderSize - 64

// writeSegChain writes a blob into a fresh chain of colseg pages.
func (t *Table) writeSegChain(blob []byte) (store.PageID, error) {
	var head, prev store.PageID
	for off := 0; off == 0 || off < len(blob); off += segChunk {
		hi := off + segChunk
		if hi > len(blob) {
			hi = len(blob)
		}
		f, err := t.pool.NewPage(t.file, page.TypeColSeg)
		if err != nil {
			if head != 0 {
				t.freeSegChain(head)
			}
			return 0, err
		}
		f.Data.SetOwner(t.ID)
		f.Data.Insert(blob[off:hi])
		id := f.ID
		t.pool.Unpin(f, true)
		if head == 0 {
			head = id
		} else {
			pf, err := t.pool.Get(prev)
			if err != nil {
				t.freeSegChain(head)
				return 0, err
			}
			pf.Lock()
			pf.Data.SetNext(uint64(id))
			pf.MarkDirty()
			pf.Unlock()
			t.pool.Unpin(pf, true)
		}
		prev = id
	}
	return head, nil
}

// readSegChain concatenates the blob chunks of a colseg chain.
func (t *Table) readSegChain(head store.PageID) ([]byte, error) {
	var blob []byte
	cur := head
	for cur != 0 {
		f, err := t.pool.Get(cur)
		if err != nil {
			return nil, err
		}
		f.RLock()
		if f.Data.Type() != page.TypeColSeg {
			f.RUnlock()
			t.pool.Unpin(f, false)
			return nil, fmt.Errorf("table %s: page %v is %v, not colseg", t.Name, cur, f.Data.Type())
		}
		if cell := f.Data.Cell(0); cell != nil {
			blob = append(blob, cell...)
		}
		next := f.Data.Next()
		f.RUnlock()
		t.pool.Unpin(f, false)
		cur = store.PageID(next)
	}
	return blob, nil
}

// freeSegChain returns a blob chain's pages to the free list.
func (t *Table) freeSegChain(head store.PageID) {
	cur := head
	for cur != 0 {
		f, err := t.pool.Get(cur)
		if err != nil {
			return // abandon the rest; reclaimed at the next vacuum
		}
		f.RLock()
		next := f.Data.Next()
		f.RUnlock()
		t.pool.Unpin(f, false)
		t.pool.Discard(cur)
		_ = t.st.Free(cur)
		cur = store.PageID(next)
	}
}

func pageIDBytes(id store.PageID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(id))
	return b[:]
}
