// Streaming-apply surface: the physical and logical row maintenance a WAL
// log-shipping replica needs to replay a primary's data records in arrival
// (LSN) order. Each Apply* method mirrors one record type: it performs the
// page mutation at exactly the shipped location, pushes the version-chain
// entry that hides the still-uncommitted change from local snapshot readers
// (Writer = the primary's transaction id), and maintains histograms and the
// row counter. Index trees are deliberately untouched — a replica attaches
// none (a btree split would allocate pages that collide with ids the
// primary assigns later in the stream); the loops below run over whatever
// Indexes holds and so no-op on a replica.
//
// The ApplyUndo* methods are the compensations run, in reverse order, when
// a RecRollback arrives: they restore the heap pre-image without pushing
// versions (the rolled-back writer's entries are left for vacuum's
// writer-gone rule, exactly like a local rollback).

package table

import (
	"fmt"

	"anywheredb/internal/mvcc"
	"anywheredb/internal/page"
	"anywheredb/internal/store"
	"anywheredb/internal/val"
)

// applyPage runs fn on rid's page under the exclusive latch, initialising a
// never-written page first (a shipped record can target a page the replica
// has only zero-filled).
func (t *Table) applyPage(pid store.PageID, fn func(p page.Buf) error) error {
	f, err := t.pool.Get(pid)
	if err != nil {
		return err
	}
	f.Lock()
	if f.Data.Type() == page.TypeFree {
		f.Data.Init(page.TypeTable)
		f.Data.SetOwner(t.ID)
	}
	err = fn(f.Data)
	if err == nil {
		f.MarkDirty()
	}
	f.Unlock()
	t.pool.Unpin(f, err == nil)
	return err
}

// ApplyInsert replays a shipped insert at exactly rid, on behalf of primary
// transaction writer. It returns the version entry hiding the row, for CSN
// stamping when the transaction's commit record arrives.
func (t *Table) ApplyInsert(rid RID, row []val.Value, enc []byte, writer uint64) (*mvcc.Entry, error) {
	var e *mvcc.Entry
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if cur := p.Cell(rid.Slot); cur != nil {
			return fmt.Errorf("table %s: apply insert at occupied %v", t.Name, rid)
		}
		if !p.InsertSparse(rid.Slot, enc) {
			return fmt.Errorf("table %s: apply insert could not place %v", t.Name, rid)
		}
		// Push the not-exists marker under the page latch, as insertBytes
		// does: a snapshot reader that can see the new cell must also find
		// the chain entry that hides it.
		e = &mvcc.Entry{Writer: writer, Row: nil, Exists: false, Bytes: mvcc.SizeOf(nil)}
		t.versions.Push(mvcc.RowID{Page: rid.Page, Slot: rid.Slot}, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, h := range t.Hists {
		h.NoteInsert(row[i])
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.Key(row), rid.Bytes()); err != nil {
			return nil, err
		}
	}
	t.rows.Add(1)
	return e, nil
}

// ApplyUpdate replays a shipped in-place update at rid (a moving update
// ships as a delete/insert pair, never as RecUpdate).
func (t *Table) ApplyUpdate(rid RID, oldRow, newRow []val.Value, enc []byte, writer uint64) (*mvcc.Entry, error) {
	t.invalidateColumnar(nil)
	var e *mvcc.Entry
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if p.Cell(rid.Slot) == nil {
			return fmt.Errorf("table %s: apply update at empty %v", t.Name, rid)
		}
		e = &mvcc.Entry{Writer: writer, Row: oldRow, Exists: true, Bytes: mvcc.SizeOf(oldRow)}
		t.versions.Push(mvcc.RowID{Page: rid.Page, Slot: rid.Slot}, e)
		if !p.Update(rid.Slot, enc) {
			return fmt.Errorf("table %s: apply update did not fit at %v", t.Name, rid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, h := range t.Hists {
		if val.Compare(oldRow[i], newRow[i]) != 0 || oldRow[i].IsNull() != newRow[i].IsNull() {
			h.NoteDelete(oldRow[i])
			h.NoteInsert(newRow[i])
		}
	}
	for _, ix := range t.Indexes {
		oldKey, newKey := ix.Key(oldRow), ix.Key(newRow)
		if string(oldKey) != string(newKey) {
			if _, err := ix.Tree.Delete(oldKey, rid.Bytes()); err != nil {
				return nil, err
			}
			if err := ix.Tree.Insert(newKey, rid.Bytes()); err != nil {
				return nil, err
			}
		}
	}
	return e, nil
}

// ApplyDelete replays a shipped delete of rid; row is the shipped pre-image.
func (t *Table) ApplyDelete(rid RID, row []val.Value, writer uint64) (*mvcc.Entry, error) {
	t.invalidateColumnar(nil)
	var e *mvcc.Entry
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if p.Cell(rid.Slot) == nil {
			return fmt.Errorf("table %s: apply delete at empty %v", t.Name, rid)
		}
		e = &mvcc.Entry{Writer: writer, Row: row, Exists: true, Bytes: mvcc.SizeOf(row)}
		t.versions.Push(mvcc.RowID{Page: rid.Page, Slot: rid.Slot}, e)
		if !p.Delete(rid.Slot) {
			return fmt.Errorf("table %s: apply delete failed at %v", t.Name, rid)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, h := range t.Hists {
		h.NoteDelete(row[i])
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Tree.Delete(ix.Key(row), rid.Bytes()); err != nil {
			return nil, err
		}
	}
	t.rows.Add(-1)
	return e, nil
}

// ApplyPageLink replays shipped heap-chain growth: prev's next pointer is
// set to next, next is initialised as a table page, and the in-memory chain
// bookkeeping (tail pointer, page count) follows.
func (t *Table) ApplyPageLink(prev, next store.PageID) error {
	if err := t.applyPage(prev, func(p page.Buf) error {
		if p.Next() != uint64(next) {
			p.SetNext(uint64(next))
		}
		return nil
	}); err != nil {
		return err
	}
	if err := t.applyPage(next, func(p page.Buf) error { return nil }); err != nil {
		return err
	}
	t.mu.Lock()
	if t.last == prev {
		t.last = next
		t.pages.Add(1)
	}
	t.mu.Unlock()
	return nil
}

// ApplyColSegDrop replays a shipped columnar invalidation: the in-memory
// snapshot is dropped (no page frees — the primary owns the free list).
func (t *Table) ApplyColSegDrop() {
	t.invalidateColumnar(nil)
}

// ApplyUndoInsert compensates an applied insert during streamed rollback.
func (t *Table) ApplyUndoInsert(rid RID, row []val.Value) error {
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if p.Cell(rid.Slot) == nil {
			return nil // never applied (or already undone): idempotent
		}
		p.Delete(rid.Slot)
		return nil
	})
	if err != nil {
		return err
	}
	for i, h := range t.Hists {
		h.NoteDelete(row[i])
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Tree.Delete(ix.Key(row), rid.Bytes()); err != nil {
			return err
		}
	}
	t.rows.Add(-1)
	return nil
}

// ApplyUndoDelete restores a deleted row during streamed rollback.
func (t *Table) ApplyUndoDelete(rid RID, row []val.Value) error {
	enc := val.EncodeRow(row)
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if p.Cell(rid.Slot) != nil {
			return nil
		}
		if !p.InsertSparse(rid.Slot, enc) {
			return fmt.Errorf("table %s: undo delete could not restore %v", t.Name, rid)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, h := range t.Hists {
		h.NoteInsert(row[i])
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.Key(row), rid.Bytes()); err != nil {
			return err
		}
	}
	t.rows.Add(1)
	return nil
}

// ApplyUndoUpdate restores the pre-image of an in-place update during
// streamed rollback.
func (t *Table) ApplyUndoUpdate(rid RID, oldRow, newRow []val.Value) error {
	enc := val.EncodeRow(oldRow)
	err := t.applyPage(rid.Page, func(p page.Buf) error {
		if p.Cell(rid.Slot) == nil {
			return fmt.Errorf("table %s: undo update at empty %v", t.Name, rid)
		}
		if !p.Update(rid.Slot, enc) {
			return fmt.Errorf("table %s: undo update did not fit at %v", t.Name, rid)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i, h := range t.Hists {
		if val.Compare(oldRow[i], newRow[i]) != 0 || oldRow[i].IsNull() != newRow[i].IsNull() {
			h.NoteDelete(newRow[i])
			h.NoteInsert(oldRow[i])
		}
	}
	for _, ix := range t.Indexes {
		oldKey, newKey := ix.Key(oldRow), ix.Key(newRow)
		if string(oldKey) != string(newKey) {
			if _, err := ix.Tree.Delete(newKey, rid.Bytes()); err != nil {
				return err
			}
			if err := ix.Tree.Insert(oldKey, rid.Bytes()); err != nil {
				return err
			}
		}
	}
	return nil
}
