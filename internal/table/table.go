// Package table implements heap tables: chains of slotted pages in the
// buffer pool, with transactional insert/update/delete, index maintenance,
// and automatic statistics upkeep — every DML statement updates the
// histograms of the modified columns (§3.2).
package table

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"anywheredb/internal/btree"
	"anywheredb/internal/buffer"
	"anywheredb/internal/lock"
	"anywheredb/internal/mvcc"
	"anywheredb/internal/page"
	"anywheredb/internal/stats"
	"anywheredb/internal/store"
	"anywheredb/internal/txn"
	"anywheredb/internal/val"
	"anywheredb/internal/wal"
)

// ErrRowTooLarge is returned for rows exceeding one page's capacity.
var ErrRowTooLarge = errors.New("table: row exceeds page capacity")

// ErrNotFound is returned when a RID does not address a live row.
var ErrNotFound = errors.New("table: row not found")

// ErrUnique is returned when an insert violates a unique index.
var ErrUnique = errors.New("table: unique index violation")

// Column describes one column.
type Column struct {
	Name string
	Kind val.Kind
}

// RID addresses a row: its page and slot.
type RID struct {
	Page store.PageID
	Slot int
}

// Bytes encodes the RID for storage as an index value.
func (r RID) Bytes() []byte {
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r.Page))
	binary.LittleEndian.PutUint32(b[8:], uint32(r.Slot))
	return b[:]
}

// RIDFromBytes decodes an index value back into a RID.
func RIDFromBytes(b []byte) RID {
	return RID{
		Page: store.PageID(binary.LittleEndian.Uint64(b)),
		Slot: int(binary.LittleEndian.Uint32(b[8:])),
	}
}

func (r RID) String() string { return fmt.Sprintf("%v.%d", r.Page, r.Slot) }

// Index is a secondary index over a table.
type Index struct {
	ID     uint64
	Name   string
	Cols   []int // column ordinals, in key order
	Unique bool
	Tree   *btree.Tree
}

// Key builds the index key for a row.
func (ix *Index) Key(row []val.Value) []byte {
	kv := make([]val.Value, len(ix.Cols))
	for i, c := range ix.Cols {
		kv[i] = row[c]
	}
	return val.EncodeKey(kv)
}

// Table is a heap table.
type Table struct {
	ID      uint64
	Name    string
	Columns []Column

	pool *buffer.Pool
	st   *store.Store
	file store.FileID

	mu    sync.Mutex
	first store.PageID
	last  store.PageID

	rows  atomic.Int64
	pages atomic.Int64

	// colstate is the immutable columnar snapshot (nil = row-only); colGen
	// (under mu) counts update/delete mutations so an in-flight build can
	// detect that it raced a writer. See colseg.go.
	colstate atomic.Pointer[ColState]
	colGen   uint64
	// SegmentRows overrides the rows per sealed segment (0 = default).
	SegmentRows int
	// OnColsegDrop, when set (by core), is called after a hot-path
	// invalidation so the engine can count it and de-promote the table.
	OnColsegDrop func()

	// versions holds the row version chains for snapshot reads: the
	// pre-image of every in-flight (and not-yet-vacuumed committed) write,
	// keyed by heap location. The heap always has the newest version;
	// snapshot readers resolve backwards through here. Volatile by design:
	// recovery resolves every transaction, so chains restart empty.
	versions *mvcc.Store

	// Hists holds one self-managing histogram per column.
	Hists []*stats.Histogram
	// StrStats holds long-string statistics for string columns (nil for
	// other kinds).
	StrStats []*stats.StringStats

	Indexes []*Index
}

// Create makes an empty table with one (empty) page.
func Create(pool *buffer.Pool, st *store.Store, file store.FileID, id uint64, name string, cols []Column) (*Table, error) {
	t := &Table{ID: id, Name: name, Columns: cols, pool: pool, st: st, file: file, versions: mvcc.NewStore()}
	f, err := pool.NewPage(file, page.TypeTable)
	if err != nil {
		return nil, err
	}
	f.Data.SetOwner(id)
	t.first, t.last = f.ID, f.ID
	pool.Unpin(f, true)
	t.pages.Store(1)
	t.initStats()
	return t, nil
}

// Attach opens an existing table chain and recounts rows.
func Attach(pool *buffer.Pool, st *store.Store, id uint64, name string, cols []Column, first store.PageID) (*Table, error) {
	t := &Table{ID: id, Name: name, Columns: cols, pool: pool, st: st, file: first.File(), first: first, last: first, versions: mvcc.NewStore()}
	t.initStats()
	// Walk the chain to find the tail and count rows/pages.
	var rows, pages int64
	cur := first
	for cur != 0 {
		f, err := pool.Get(cur)
		if err != nil {
			return nil, err
		}
		f.RLock()
		rows += int64(f.Data.LiveCells())
		next := f.Data.Next()
		f.RUnlock()
		pool.Unpin(f, false)
		pages++
		t.last = cur
		cur = store.PageID(next)
	}
	t.rows.Store(rows)
	t.pages.Store(pages)
	return t, nil
}

func (t *Table) initStats() {
	t.Hists = make([]*stats.Histogram, len(t.Columns))
	t.StrStats = make([]*stats.StringStats, len(t.Columns))
	for i, c := range t.Columns {
		t.Hists[i] = stats.NewHistogram(c.Kind)
		if c.Kind == val.KStr {
			t.StrStats[i] = stats.NewStringStats()
		}
	}
}

// ColumnIndex returns the ordinal of a named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// RowCount reports the live row count.
func (t *Table) RowCount() int64 { return t.rows.Load() }

// PageCount reports the chain length in pages.
func (t *Table) PageCount() int64 { return t.pages.Load() }

// FirstPage reports the head of the page chain (persisted in the catalog).
func (t *Table) FirstPage() store.PageID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.first
}

// ResidentFraction reports the fraction of the table's pages currently in
// the buffer pool — maintained in real time and used by the cost model
// when costing access methods (§3.2).
func (t *Table) ResidentFraction() float64 {
	p := t.pages.Load()
	if p == 0 {
		return 0
	}
	res := t.pool.ResidentPages(t.ID)
	fr := float64(res) / float64(p)
	if fr > 1 {
		fr = 1
	}
	return fr
}

// Insert adds a row, maintaining indexes and histograms, and logging for
// recovery/rollback. tx may be nil for non-transactional bulk load.
func (t *Table) Insert(tx *txn.Txn, row []val.Value) (RID, error) {
	if len(row) != len(t.Columns) {
		return RID{}, fmt.Errorf("table %s: %d values for %d columns", t.Name, len(row), len(t.Columns))
	}
	enc := val.EncodeRow(row)
	if len(enc) > page.Size-page.HeaderSize-8 {
		return RID{}, ErrRowTooLarge
	}

	// Unique index pre-check.
	for _, ix := range t.Indexes {
		if !ix.Unique {
			continue
		}
		if _, found, err := ix.Tree.Search(ix.Key(row)); err != nil {
			return RID{}, err
		} else if found {
			return RID{}, fmt.Errorf("%w: index %s", ErrUnique, ix.Name)
		}
	}

	if tx != nil {
		// Declare write intent on the table before touching the heap, so
		// locking readers (table-S) serialize against this writer.
		if err := tx.Lock(t.ID, nil, lock.IntentExclusive); err != nil {
			return RID{}, err
		}
	}
	rid, err := t.insertBytes(tx, enc)
	if err != nil {
		return RID{}, err
	}
	if tx != nil {
		if err := tx.Lock(t.ID, rid.Bytes(), lock.Exclusive); err != nil {
			_ = t.removeRow(rid)
			return RID{}, err
		}
		tx.Log(&wal.Record{Type: wal.RecInsert, Table: t.ID, Page: rid.Page, Slot: uint32(rid.Slot), After: enc})
		tx.OnRollback(func() error { return t.undoInsert(rid, row) })
	}
	for i, h := range t.Hists {
		h.NoteInsert(row[i])
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.Key(row), rid.Bytes()); err != nil {
			return RID{}, err
		}
	}
	t.rows.Add(1)
	return rid, nil
}

// insertBytes places the encoded row into the chain's tail, growing it as
// needed. When the chain grows under a transaction, the new linkage is
// logged as a RecPageLink record so recovery can rebuild the chain even if
// only some of the affected pages reached disk. tx may be nil (bulk load).
func (t *Table) insertBytes(tx *txn.Txn, enc []byte) (RID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := t.pool.Get(t.last)
	if err != nil {
		return RID{}, err
	}
	f.Lock()
	slot := f.Data.Insert(enc)
	if slot >= 0 {
		f.MarkDirty()
		id := f.ID
		// Push the insert marker ("no row existed here before this txn")
		// while still holding the page latch: a snapshot reader that can
		// see the new cell must also find the chain entry that hides it.
		t.pushVersion(tx, RID{Page: id, Slot: slot}, nil, false)
		f.Unlock()
		t.pool.Unpin(f, true)
		return RID{Page: id, Slot: slot}, nil
	}
	// Tail full: extend the chain.
	nf, err := t.pool.NewPage(t.file, page.TypeTable)
	if err != nil {
		f.Unlock()
		t.pool.Unpin(f, false)
		return RID{}, err
	}
	nf.Data.SetOwner(t.ID)
	f.Data.SetNext(uint64(nf.ID))
	f.MarkDirty()
	f.Unlock()
	t.pool.Unpin(f, true)
	if tx != nil {
		var next [8]byte
		binary.LittleEndian.PutUint64(next[:], uint64(nf.ID))
		tx.Log(&wal.Record{Type: wal.RecPageLink, Table: t.ID, Page: f.ID, After: next[:]})
	}
	t.last = nf.ID
	t.pages.Add(1)
	nf.Lock()
	slot = nf.Data.Insert(enc)
	id := nf.ID
	if slot >= 0 {
		t.pushVersion(tx, RID{Page: id, Slot: slot}, nil, false)
	}
	nf.Unlock()
	t.pool.Unpin(nf, true)
	if slot < 0 {
		return RID{}, fmt.Errorf("table %s: fresh page rejected %d bytes", t.Name, len(enc))
	}
	return RID{Page: id, Slot: slot}, nil
}

// pushVersion prepends a pre-image entry to rid's version chain on behalf
// of tx. No-op for non-transactional work (bulk load, rollback undo —
// compensations restore state rather than create new versions).
func (t *Table) pushVersion(tx *txn.Txn, rid RID, pre []val.Value, exists bool) {
	if tx == nil {
		return
	}
	e := &mvcc.Entry{Writer: tx.ID(), Row: pre, Exists: exists, Bytes: mvcc.SizeOf(pre)}
	id := mvcc.RowID{Page: rid.Page, Slot: rid.Slot}
	t.versions.Push(id, e)
	tx.NoteVersion(t.versions, id, e)
}

// undoInsert compensates an insert during rollback.
func (t *Table) undoInsert(rid RID, row []val.Value) error {
	// The compensated insert always lives in the delta tail, but a build
	// may have sealed the chain between insert and rollback; invalidate
	// conservatively rather than reason about the boundary.
	t.invalidateColumnar(nil)
	if err := t.removeRow(rid); err != nil {
		return err
	}
	for i, h := range t.Hists {
		h.NoteDelete(row[i])
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Tree.Delete(ix.Key(row), rid.Bytes()); err != nil {
			return err
		}
	}
	t.rows.Add(-1)
	return nil
}

// removeRow deletes the physical row.
func (t *Table) removeRow(rid RID) error {
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(f, true)
	f.Lock()
	defer f.Unlock()
	if !f.Data.Delete(rid.Slot) {
		return ErrNotFound
	}
	f.MarkDirty()
	return nil
}

// Get reads a row by RID.
func (t *Table) Get(rid RID) ([]val.Value, error) {
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(f, false)
	f.RLock()
	defer f.RUnlock()
	cell := f.Data.Cell(rid.Slot)
	if cell == nil {
		return nil, ErrNotFound
	}
	return val.DecodeRow(cell)
}

// Delete removes a row, maintaining indexes, histograms, and undo.
// UpdateChecked updates rid by deriving the replacement row from the
// current committed row under the row's exclusive lock. check sees the
// fresh row and may veto the write (the caller's WHERE predicate no longer
// matches because a concurrent writer got there first); compute builds the
// new row from the same fresh image, so read-modify-write statements
// (UPDATE ... SET x = x + 1) never lose a concurrent update committed
// between the caller's target scan and the lock grant. Reports whether the
// row was written.
func (t *Table) UpdateChecked(tx *txn.Txn, rid RID,
	check func(row []val.Value) (bool, error),
	compute func(row []val.Value) ([]val.Value, error)) (RID, bool, error) {
	if tx != nil {
		if err := tx.Lock(t.ID, nil, lock.IntentExclusive); err != nil {
			return RID{}, false, err
		}
		if err := tx.Lock(t.ID, rid.Bytes(), lock.Exclusive); err != nil {
			return RID{}, false, err
		}
	}
	old, err := t.Get(rid)
	if err != nil {
		return RID{}, false, err
	}
	if check != nil {
		ok, err := check(old)
		if err != nil || !ok {
			return rid, false, err
		}
	}
	newRow, err := compute(old)
	if err != nil {
		return RID{}, false, err
	}
	newRID, err := t.Update(tx, rid, newRow)
	return newRID, err == nil, err
}

// DeleteChecked deletes rid if check approves the current committed row
// under the row's exclusive lock (the same staleness guard as
// UpdateChecked). Reports whether the row was deleted.
func (t *Table) DeleteChecked(tx *txn.Txn, rid RID,
	check func(row []val.Value) (bool, error)) (bool, error) {
	if tx != nil {
		if err := tx.Lock(t.ID, nil, lock.IntentExclusive); err != nil {
			return false, err
		}
		if err := tx.Lock(t.ID, rid.Bytes(), lock.Exclusive); err != nil {
			return false, err
		}
	}
	row, err := t.Get(rid)
	if err != nil {
		return false, err
	}
	if check != nil {
		ok, err := check(row)
		if err != nil || !ok {
			return false, err
		}
	}
	if err := t.Delete(tx, rid); err != nil {
		return false, err
	}
	return true, nil
}

func (t *Table) Delete(tx *txn.Txn, rid RID) error {
	// Lock before reading the pre-image, so the saved version cannot be
	// stale by the time it lands on the chain.
	if tx != nil {
		if err := tx.Lock(t.ID, nil, lock.IntentExclusive); err != nil {
			return err
		}
		if err := tx.Lock(t.ID, rid.Bytes(), lock.Exclusive); err != nil {
			return err
		}
	}
	row, err := t.Get(rid)
	if err != nil {
		return err
	}
	// The row may be covered by sealed column segments: drop them (WAL-
	// logged before the delete record) so no scan — live or replayed —
	// can see the stale columnar image.
	t.invalidateColumnar(tx)
	// Chain the pre-image before the cell disappears: a snapshot reader
	// either sees the live cell, or resurrects it from here.
	t.pushVersion(tx, rid, row, true)
	if err := t.removeRow(rid); err != nil {
		return err
	}
	enc := val.EncodeRow(row)
	if tx != nil {
		tx.Log(&wal.Record{Type: wal.RecDelete, Table: t.ID, Page: rid.Page, Slot: uint32(rid.Slot), Before: enc})
		tx.OnRollback(func() error { return t.undoDelete(rid, row) })
	}
	for i, h := range t.Hists {
		h.NoteDelete(row[i])
	}
	for _, ix := range t.Indexes {
		if _, err := ix.Tree.Delete(ix.Key(row), rid.Bytes()); err != nil {
			return err
		}
	}
	t.rows.Add(-1)
	return nil
}

// undoDelete restores a deleted row at its original RID.
func (t *Table) undoDelete(rid RID, row []val.Value) error {
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return err
	}
	f.Lock()
	ok := f.Data.InsertAt(rid.Slot, val.EncodeRow(row))
	f.MarkDirty()
	f.Unlock()
	t.pool.Unpin(f, true)
	if !ok {
		return fmt.Errorf("table %s: undo delete could not restore %v", t.Name, rid)
	}
	for i, h := range t.Hists {
		h.NoteInsert(row[i])
	}
	for _, ix := range t.Indexes {
		if err := ix.Tree.Insert(ix.Key(row), rid.Bytes()); err != nil {
			return err
		}
	}
	t.rows.Add(1)
	return nil
}

// Update replaces a row. If the new encoding no longer fits in place the
// row moves and the returned RID differs.
func (t *Table) Update(tx *txn.Txn, rid RID, newRow []val.Value) (RID, error) {
	if len(newRow) != len(t.Columns) {
		return RID{}, fmt.Errorf("table %s: %d values for %d columns", t.Name, len(newRow), len(t.Columns))
	}
	if tx != nil {
		if err := tx.Lock(t.ID, nil, lock.IntentExclusive); err != nil {
			return RID{}, err
		}
		if err := tx.Lock(t.ID, rid.Bytes(), lock.Exclusive); err != nil {
			return RID{}, err
		}
	}
	oldRow, err := t.Get(rid)
	if err != nil {
		return RID{}, err
	}
	newEnc := val.EncodeRow(newRow)
	if len(newEnc) > page.Size-page.HeaderSize-8 {
		return RID{}, ErrRowTooLarge
	}
	// As in Delete: sealed segments may cover this row.
	t.invalidateColumnar(tx)
	// One pre-image entry at the original location covers both outcomes:
	// updated in place (chain hides the new bytes) or moved away (chain
	// resurrects the row where the cell used to be, and insertBytes chains
	// a not-exists marker at the new location).
	t.pushVersion(tx, rid, oldRow, true)

	newRID := rid
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return RID{}, err
	}
	f.Lock()
	inPlace := f.Data.Update(rid.Slot, newEnc)
	if inPlace {
		f.MarkDirty()
	}
	f.Unlock()
	t.pool.Unpin(f, inPlace)
	if !inPlace {
		// Move: delete + reinsert, logged as a delete/insert pair. A single
		// RecUpdate at the new location would leave the old cell's removal
		// unlogged: if the old page never reached disk before a crash, redo
		// would resurrect the original row beside the moved copy.
		if err := t.removeRow(rid); err != nil {
			return RID{}, err
		}
		if tx != nil {
			tx.Log(&wal.Record{Type: wal.RecDelete, Table: t.ID, Page: rid.Page, Slot: uint32(rid.Slot),
				Before: val.EncodeRow(oldRow)})
		}
		newRID, err = t.insertBytes(tx, newEnc)
		if err != nil {
			return RID{}, err
		}
		if tx != nil {
			tx.Log(&wal.Record{Type: wal.RecInsert, Table: t.ID, Page: newRID.Page, Slot: uint32(newRID.Slot),
				After: newEnc})
		}
	} else if tx != nil {
		tx.Log(&wal.Record{Type: wal.RecUpdate, Table: t.ID, Page: newRID.Page, Slot: uint32(newRID.Slot),
			Before: val.EncodeRow(oldRow), After: newEnc})
	}
	if tx != nil {
		tx.OnRollback(func() error {
			_, err := t.Update(nil, newRID, oldRow)
			return err
		})
	}
	for i, h := range t.Hists {
		if val.Compare(oldRow[i], newRow[i]) != 0 || oldRow[i].IsNull() != newRow[i].IsNull() {
			h.NoteDelete(oldRow[i])
			h.NoteInsert(newRow[i])
		}
	}
	for _, ix := range t.Indexes {
		oldKey, newKey := ix.Key(oldRow), ix.Key(newRow)
		if string(oldKey) != string(newKey) || newRID != rid {
			if _, err := ix.Tree.Delete(oldKey, rid.Bytes()); err != nil {
				return RID{}, err
			}
			if err := ix.Tree.Insert(newKey, newRID.Bytes()); err != nil {
				return RID{}, err
			}
		}
	}
	return newRID, nil
}

// Scan calls fn for every live row in chain order. fn returns false to
// stop early.
func (t *Table) Scan(fn func(rid RID, row []val.Value) (bool, error)) error {
	t.mu.Lock()
	cur := t.first
	t.mu.Unlock()
	return t.scanRange(cur, 0, nil, fn)
}

// ScanFrom scans live rows starting at a chain page (the columnar delta
// tail begins at ColState.DeltaStart).
func (t *Table) ScanFrom(start store.PageID, fn func(rid RID, row []val.Value) (bool, error)) error {
	return t.scanRange(start, 0, nil, fn)
}

// ScanSnapshot scans the version of every row visible to snap, in chain
// order, without any lock-manager interaction: rows a concurrent writer has
// touched resolve through their version chains, and rows it deleted or
// moved are resurrected from their pre-images.
func (t *Table) ScanSnapshot(snap *mvcc.Snapshot, fn func(rid RID, row []val.Value) (bool, error)) error {
	t.mu.Lock()
	cur := t.first
	t.mu.Unlock()
	return t.scanRange(cur, 0, snap, fn)
}

// ScanSnapshotFrom is ScanSnapshot starting at a chain page.
func (t *Table) ScanSnapshotFrom(start store.PageID, snap *mvcc.Snapshot, fn func(rid RID, row []val.Value) (bool, error)) error {
	return t.scanRange(start, 0, snap, fn)
}

// scanItem is one emitted row of a page scan.
type scanItem struct {
	slot int
	row  []val.Value
}

// scanRange walks chain pages from start until stop (exclusive; 0 = end of
// chain), calling fn per live row — per visible row when snap is non-nil.
func (t *Table) scanRange(start, stop store.PageID, snap *mvcc.Snapshot, fn func(rid RID, row []val.Value) (bool, error)) error {
	cur := start
	for cur != 0 && cur != stop {
		f, err := t.pool.Get(cur)
		if err != nil {
			return err
		}
		f.RLock()
		n := f.Data.NumSlots()
		items := make([]scanItem, 0, n)
		for s := 0; s < n; s++ {
			cell := f.Data.Cell(s)
			if cell == nil {
				continue
			}
			row, err := val.DecodeRow(cell)
			if err != nil {
				f.RUnlock()
				t.pool.Unpin(f, false)
				return fmt.Errorf("table %s: %v slot %d: %w", t.Name, cur, s, err)
			}
			items = append(items, scanItem{s, row})
		}
		if snap != nil && !t.versions.Empty() {
			// Resolve under the same latch hold that read the cells: heap
			// content and chain heads stay mutually consistent.
			items = t.applySnapshot(cur, items, snap)
		}
		next := f.Data.Next()
		f.RUnlock()
		t.pool.Unpin(f, false)
		for _, it := range items {
			cont, err := fn(RID{Page: cur, Slot: it.slot}, it.row)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		cur = store.PageID(next)
	}
	return nil
}

// applySnapshot rewrites one page's decoded rows through the version
// chains: a row with a chain resolves to its visible version (possibly
// vanishing), and a chain whose heap cell is gone resurrects the version a
// concurrent delete or move hid. The caller holds the page latch shared.
func (t *Table) applySnapshot(pg store.PageID, items []scanItem, snap *mvcc.Snapshot) []scanItem {
	slots := t.versions.SlotsOnPage(pg)
	if len(slots) == 0 {
		return items
	}
	chained := make(map[int]bool, len(slots))
	for _, s := range slots {
		chained[s] = true
	}
	out := items[:0]
	for _, it := range items {
		if !chained[it.slot] {
			out = append(out, it)
			continue
		}
		chained[it.slot] = false
		row, ok := t.versions.Resolve(mvcc.RowID{Page: pg, Slot: it.slot}, it.row, true, snap)
		if ok {
			out = append(out, scanItem{it.slot, copyRow(row)})
		}
	}
	for _, s := range slots {
		if !chained[s] {
			continue
		}
		row, ok := t.versions.Resolve(mvcc.RowID{Page: pg, Slot: s}, nil, false, snap)
		if ok {
			out = append(out, scanItem{s, copyRow(row)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].slot < out[j].slot })
	return out
}

// copyRow detaches a row that may alias a shared chain pre-image.
func copyRow(r []val.Value) []val.Value { return append([]val.Value(nil), r...) }

// GetVersioned reads the version of the row at rid visible to snap. The
// bool result distinguishes "no visible row" from an error. A nil snap
// reads the latest content, like Get, but without ErrNotFound.
func (t *Table) GetVersioned(rid RID, snap *mvcc.Snapshot) ([]val.Value, bool, error) {
	f, err := t.pool.Get(rid.Page)
	if err != nil {
		return nil, false, err
	}
	defer t.pool.Unpin(f, false)
	f.RLock()
	defer f.RUnlock()
	var row []val.Value
	exists := false
	if cell := f.Data.Cell(rid.Slot); cell != nil {
		if row, err = val.DecodeRow(cell); err != nil {
			return nil, false, err
		}
		exists = true
	}
	if snap != nil && !t.versions.Empty() {
		row, exists = t.versions.Resolve(mvcc.RowID{Page: rid.Page, Slot: rid.Slot}, row, exists, snap)
		if exists {
			row = copyRow(row)
		}
	}
	if !exists {
		return nil, false, nil
	}
	return row, true, nil
}

// VersionsEmpty reports whether the table has no live version chains —
// the fast path that makes snapshot scans (and the columnar read path)
// chain-free when no writer is in flight and vacuum has caught up.
func (t *Table) VersionsEmpty() bool { return t.versions.Empty() }

// VersionCount reports the number of live version-chain entries.
func (t *Table) VersionCount() int64 { return t.versions.Count() }

// VersionBytes reports the approximate memory held by version chains.
func (t *Table) VersionBytes() int64 { return t.versions.Bytes() }

// VersionRIDs lists every heap location with a live chain; index scans
// under a snapshot probe these for rows the index no longer points at.
func (t *Table) VersionRIDs() []RID {
	ids := t.versions.RowIDs()
	out := make([]RID, len(ids))
	for i, id := range ids {
		out[i] = RID{Page: id.Page, Slot: id.Slot}
	}
	return out
}

// VacuumVersions reclaims version entries no live or future snapshot can
// reach (see mvcc.Store.Vacuum). active reports writer liveness.
func (t *Table) VacuumVersions(threshold uint64, active func(txn uint64) bool) int {
	return t.versions.Vacuum(threshold, active)
}

// AddIndex creates a new index and populates it from existing rows,
// (re)building statistics for the key columns as CREATE INDEX does (§3.2).
func (t *Table) AddIndex(id uint64, name string, cols []int, unique bool) (*Index, error) {
	return t.AddIndexIn(t.file, id, name, cols, unique)
}

// AddIndexIn builds the index in a specific file. The Index Consultant
// (§5) materializes its virtual indexes in the temporary file so they
// never touch the database.
func (t *Table) AddIndexIn(file store.FileID, id uint64, name string, cols []int, unique bool) (*Index, error) {
	tree, err := btree.Create(t.pool, t.st, file, id)
	if err != nil {
		return nil, err
	}
	ix := &Index{ID: id, Name: name, Cols: cols, Unique: unique, Tree: tree}
	builders := make([]*stats.Builder, len(cols))
	for i, c := range cols {
		builders[i] = stats.NewBuilder(t.Columns[c].Kind)
	}
	err = t.Scan(func(rid RID, row []val.Value) (bool, error) {
		key := ix.Key(row)
		if unique {
			if _, found, err := tree.Search(key); err != nil {
				return false, err
			} else if found {
				return false, fmt.Errorf("%w: index %s", ErrUnique, name)
			}
		}
		for i, c := range cols {
			builders[i].Add(row[c])
		}
		return true, tree.Insert(key, rid.Bytes())
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cols {
		t.Hists[c] = builders[i].Build(32)
	}
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// RebuildIndexes repopulates every index from a fresh heap scan. Crash
// recovery replays heap pages only — index trees are not logged — so after
// a non-trivial replay the trees may be stale and must be rebuilt. The old
// trees' pages are abandoned to their file (reclaimed at the next full
// vacuum; acceptable for a crash path).
func (t *Table) RebuildIndexes() error {
	old := t.Indexes
	t.Indexes = nil
	for _, ix := range old {
		if _, err := t.AddIndexIn(t.file, ix.ID, ix.Name, ix.Cols, ix.Unique); err != nil {
			t.Indexes = old
			return fmt.Errorf("table %s: rebuild index %s: %w", t.Name, ix.Name, err)
		}
	}
	return nil
}

// RemoveIndex detaches an index (used to drop the Index Consultant's
// virtual indexes); it reports whether the index existed. The index's
// pages are abandoned to their file (temp-file pages vanish at restart).
func (t *Table) RemoveIndex(name string) bool {
	for i, ix := range t.Indexes {
		if ix.Name == name {
			t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
			return true
		}
	}
	return false
}

// IndexByName finds an index.
func (t *Table) IndexByName(name string) *Index {
	for _, ix := range t.Indexes {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// RebuildStatistics recomputes every column histogram by scanning the
// table (CREATE STATISTICS / LOAD TABLE, §3.2). String columns also
// collect whole-value and per-word statistics.
func (t *Table) RebuildStatistics() error {
	builders := make([]*stats.Builder, len(t.Columns))
	for i, c := range t.Columns {
		builders[i] = stats.NewBuilder(c.Kind)
	}
	strCounts := make([]map[string]int64, len(t.Columns))
	for i, c := range t.Columns {
		if c.Kind == val.KStr {
			strCounts[i] = map[string]int64{}
		}
	}
	total := int64(0)
	err := t.Scan(func(_ RID, row []val.Value) (bool, error) {
		total++
		for i := range t.Columns {
			builders[i].Add(row[i])
			if m := strCounts[i]; m != nil && row[i].Kind == val.KStr && len(m) < 10000 {
				m[row[i].S]++
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for i := range t.Columns {
		t.Hists[i] = builders[i].Build(32)
		if m := strCounts[i]; m != nil && total > 0 {
			ss := stats.NewStringStats()
			words := map[string]int64{}
			for s, c := range m {
				ss.Observe(stats.OpEq, s, float64(c)/float64(total))
				for _, w := range val.Words(s) {
					words[w] += c
				}
			}
			for w, c := range words {
				ss.ObserveWord(w, float64(c)/float64(total))
			}
			t.StrStats[i] = ss
		}
	}
	return nil
}
