package stats

import (
	"math"
	"math/rand"
	"testing"

	"anywheredb/internal/val"
)

// zipfValues generates n ints with a Zipf-skewed distribution over domain
// [0, domain).
func zipfValues(seed int64, n, domain int, s float64) []val.Value {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(domain-1))
	out := make([]val.Value, n)
	for i := range out {
		out[i] = val.NewInt(int64(z.Uint64()))
	}
	return out
}

func uniformValues(seed int64, n, domain int) []val.Value {
	rng := rand.New(rand.NewSource(seed))
	out := make([]val.Value, n)
	for i := range out {
		out[i] = val.NewInt(int64(rng.Intn(domain)))
	}
	return out
}

func trueEqCount(vals []val.Value, x int64) float64 {
	c := 0.0
	for _, v := range vals {
		if v.Kind == val.KInt && v.I == x {
			c++
		}
	}
	return c
}

func trueRangeCount(vals []val.Value, lo, hi int64) float64 {
	c := 0.0
	for _, v := range vals {
		if v.Kind == val.KInt && v.I >= lo && v.I < hi {
			c++
		}
	}
	return c
}

func TestBuilderSkewedSingletons(t *testing.T) {
	vals := zipfValues(1, 20000, 10000, 1.5)
	h := BuildFromValues(val.KInt, vals, 32)
	if h.SingletonCount() == 0 {
		t.Fatal("Zipf data should produce singleton buckets")
	}
	if h.SingletonCount() > MaxSingletons {
		t.Fatalf("singletons %d exceed cap", h.SingletonCount())
	}
	// The most frequent value (0) must be estimated well.
	truth := trueEqCount(vals, 0)
	est := h.SelEq(val.NewInt(0)) * h.Total()
	if q := QError(est, truth); q > 1.3 {
		t.Fatalf("frequent value q-error %g (est %g, true %g)", q, est, truth)
	}
}

func TestBuilderUniformRangeEstimates(t *testing.T) {
	vals := uniformValues(2, 20000, 10000)
	h := BuildFromValues(val.KInt, vals, 32)
	for _, r := range [][2]int64{{0, 1000}, {2500, 7500}, {9000, 10000}} {
		lo, hi := val.NewInt(r[0]), val.NewInt(r[1])
		est := h.SelRange(&lo, &hi, true, false) * h.Total()
		truth := trueRangeCount(vals, r[0], r[1])
		if q := QError(est, truth); q > 1.5 {
			t.Fatalf("range [%d,%d) q-error %g (est %g, true %g)", r[0], r[1], q, est, truth)
		}
	}
}

func TestCompressedLowCardinality(t *testing.T) {
	var vals []val.Value
	for i := 0; i < 3000; i++ {
		vals = append(vals, val.NewInt(int64(i%5))) // 5 distinct values
	}
	h := BuildFromValues(val.KInt, vals, 32)
	if !h.Compressed() {
		t.Fatalf("5-value column should compress to singletons only (buckets=%d, singles=%d)",
			h.BucketCount(), h.SingletonCount())
	}
	est := h.SelEq(val.NewInt(3))
	if math.Abs(est-0.2) > 0.02 {
		t.Fatalf("compressed selectivity %g, want ~0.2", est)
	}
}

func TestNullTracking(t *testing.T) {
	var vals []val.Value
	for i := 0; i < 900; i++ {
		vals = append(vals, val.NewInt(int64(i)))
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, val.Null)
	}
	h := BuildFromValues(val.KInt, vals, 16)
	if got := h.SelIsNull(); math.Abs(got-0.1) > 0.01 {
		t.Fatalf("IS NULL selectivity %g, want 0.1", got)
	}
	if h.SelEq(val.Null) != 0 {
		t.Fatal("= NULL must have selectivity 0")
	}
}

func TestFeedbackImprovesEquality(t *testing.T) {
	// Build a histogram from stale/unrepresentative data, then feed it
	// execution feedback about a value whose true frequency changed.
	vals := uniformValues(3, 10000, 1000)
	h := BuildFromValues(val.KInt, vals, 32)

	// Suppose value 42 actually matches 30% of rows now.
	trueSel := 0.30
	before := math.Abs(h.SelEq(val.NewInt(42)) - trueSel)
	for i := 0; i < 8; i++ {
		h.ObserveEq(val.NewInt(42), trueSel*10000, 10000)
	}
	after := math.Abs(h.SelEq(val.NewInt(42)) - trueSel)
	if after >= before {
		t.Fatalf("feedback did not improve estimate: before=%g after=%g", before, after)
	}
	if after > 0.05 {
		t.Fatalf("estimate still off by %g after feedback", after)
	}
	// The newly-frequent value became a singleton.
	if h.SingletonCount() == 0 {
		t.Fatal("frequent value should have been promoted to a singleton bucket")
	}
}

func TestFeedbackRangeCorrection(t *testing.T) {
	vals := uniformValues(4, 10000, 1000)
	h := BuildFromValues(val.KInt, vals, 32)
	lo, hi := val.NewInt(100), val.NewInt(200)

	// Claim the true count in [100,200) is 5x what uniform predicts.
	truth := 5 * h.SelRange(&lo, &hi, true, false) * h.Total()
	for i := 0; i < 10; i++ {
		h.ObserveRange(&lo, &hi, true, false, truth, h.Total())
	}
	est := h.SelRange(&lo, &hi, true, false) * h.Total()
	if q := QError(est, truth); q > 1.4 {
		t.Fatalf("range feedback q-error %g (est %g, truth %g)", q, est, truth)
	}
}

func TestDMLMaintenance(t *testing.T) {
	h := NewHistogram(val.KInt)
	for i := 0; i < 1000; i++ {
		h.NoteInsert(val.NewInt(int64(i % 100)))
	}
	if got := h.Total(); got != 1000 {
		t.Fatalf("total after inserts %g", got)
	}
	for i := 0; i < 500; i++ {
		h.NoteDelete(val.NewInt(int64(i % 100)))
	}
	if got := h.Total(); got != 500 {
		t.Fatalf("total after deletes %g", got)
	}
	h.NoteInsert(val.Null)
	if h.SelIsNull() == 0 {
		t.Fatal("null insert not tracked")
	}
	h.NoteDelete(val.Null)
	if h.SelIsNull() != 0 {
		t.Fatal("null delete not tracked")
	}
}

func TestBucketCountAdapts(t *testing.T) {
	h := NewHistogram(val.KInt)
	for i := 0; i < 200; i++ {
		h.NoteInsert(val.NewInt(int64(i)))
	}
	if h.BucketCount() < 2 {
		t.Fatalf("buckets did not expand from the seed bucket: %d", h.BucketCount())
	}
	hotBefore := bucketsOverlapping(h, 50, 60)
	// Pour a mass of inserts into a narrow region: resolution must migrate
	// there — buckets covering the hot range split while the now-sparse
	// remainder merges away.
	for i := 0; i < 20000; i++ {
		h.NoteInsert(val.NewInt(int64(50 + i%10)))
	}
	hotAfter := bucketsOverlapping(h, 50, 60)
	if hotAfter <= hotBefore {
		t.Fatalf("hot-range buckets %d -> %d, want expansion", hotBefore, hotAfter)
	}
	coldShare := float64(bucketsOverlapping(h, 100, 200)) / float64(h.BucketCount())
	hotShare := float64(hotAfter) / float64(h.BucketCount())
	if hotShare <= coldShare {
		t.Fatalf("resolution did not concentrate: hot %g vs cold %g", hotShare, coldShare)
	}
}

func bucketsOverlapping(h *Histogram, lo, hi float64) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	n := 0
	for _, b := range h.buckets {
		if b.Lo < hi && b.Hi > lo {
			n++
		}
	}
	return n
}

func TestSelRangeBoundsSemantics(t *testing.T) {
	var vals []val.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, val.NewInt(int64(i%10)))
	}
	h := BuildFromValues(val.KInt, vals, 8)
	// With 10 uniform values, [3,3] inclusive ≈ 10%.
	three := val.NewInt(3)
	selIncl := h.SelRange(&three, &three, true, true)
	if selIncl <= 0 {
		t.Fatal("inclusive point range should be positive")
	}
	selExcl := h.SelRange(&three, &three, true, false)
	if selExcl != 0 {
		t.Fatalf("empty half-open range selectivity %g", selExcl)
	}
	if h.SelRange(nil, nil, false, false) < 0.99 {
		t.Fatal("unbounded range should select everything")
	}
}

func TestEncodeDecodeHistogram(t *testing.T) {
	vals := zipfValues(5, 5000, 1000, 1.3)
	h := BuildFromValues(val.KInt, vals, 16)
	data := h.Encode()
	got, err := DecodeHistogram(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, 1, 5, 50, 500} {
		if math.Abs(got.SelEq(val.NewInt(x))-h.SelEq(val.NewInt(x))) > 1e-12 {
			t.Fatalf("selectivity mismatch after round trip at %d", x)
		}
	}
	if _, err := DecodeHistogram(data[:3]); err == nil {
		t.Fatal("truncated decode should fail")
	}
	if _, err := DecodeHistogram(nil); err == nil {
		t.Fatal("empty decode should fail")
	}
}

func TestJoinCardUniform(t *testing.T) {
	// R: 10000 rows over [0,1000); S: 5000 rows over [0,1000).
	// True equijoin cardinality ≈ 10000*5000/1000 = 50000.
	r := BuildFromValues(val.KInt, uniformValues(6, 10000, 1000), 32)
	s := BuildFromValues(val.KInt, uniformValues(7, 5000, 1000), 32)
	card := JoinCard(r, s)
	if q := QError(card, 50000); q > 2.0 {
		t.Fatalf("uniform join card %g, want ~50000 (q=%g)", card, q)
	}
}

func TestJoinCardSkewMatters(t *testing.T) {
	// Skewed join: frequent values dominate the result; the singleton ×
	// singleton term must capture that.
	r := BuildFromValues(val.KInt, zipfValues(8, 20000, 10000, 1.4), 32)
	s := BuildFromValues(val.KInt, zipfValues(9, 20000, 10000, 1.4), 32)
	skewCard := JoinCard(r, s)

	u := BuildFromValues(val.KInt, uniformValues(10, 20000, 10000), 32)
	v := BuildFromValues(val.KInt, uniformValues(11, 20000, 10000), 32)
	uniCard := JoinCard(u, v)

	if skewCard < 5*uniCard {
		t.Fatalf("skewed join估 (%g) should far exceed uniform (%g)", skewCard, uniCard)
	}
}

func TestJoinSelectivityBounded(t *testing.T) {
	r := BuildFromValues(val.KInt, uniformValues(12, 1000, 10), 8)
	s := BuildFromValues(val.KInt, uniformValues(13, 1000, 10), 8)
	sel := JoinSelectivity(r, s)
	if sel <= 0 || sel > 1 {
		t.Fatalf("join selectivity %g out of range", sel)
	}
}

func TestStringStatsObserveEstimate(t *testing.T) {
	s := NewStringStats()
	s.Observe(OpEq, "widget", 0.02)
	s.Observe(OpEq, "widget", 0.04)
	got, ok := s.Estimate(OpEq, "widget")
	if !ok || math.Abs(got-0.03) > 1e-9 {
		t.Fatalf("moving average = %g, ok=%v", got, ok)
	}
	if _, ok := s.Estimate(OpEq, "unseen"); ok {
		t.Fatal("unseen operand should miss")
	}
}

func TestStringStatsWordLike(t *testing.T) {
	s := NewStringStats()
	// 100 rows; 10 contain the word "red".
	for i := 0; i < 10; i++ {
		s.ObserveValue("big red barn", 0.01)
	}
	sel, ok := s.EstimateLike("%red%")
	if !ok {
		t.Fatal("word bucket should estimate %red%")
	}
	if math.Abs(sel-0.10) > 0.02 {
		t.Fatalf("LIKE %%red%% selectivity %g, want ~0.10", sel)
	}
	// Entire-value bucket also present.
	if _, ok := s.Estimate(OpEq, "big red barn"); !ok {
		t.Fatal("whole-value bucket missing")
	}
	// Patterns with inner wildcards cannot use word buckets.
	if _, ok := s.EstimateLike("%r_d%"); ok {
		t.Fatal("wildcarded inner pattern should miss")
	}
}

func TestStringStatsEviction(t *testing.T) {
	s := NewStringStats()
	s.maxEntry = 8
	for i := 0; i < 100; i++ {
		s.Observe(OpEq, string(rune('a'+i%26))+string(rune('0'+i%10)), 0.5)
	}
	if s.Buckets() > 8 {
		t.Fatalf("buckets %d exceed cap 8", s.Buckets())
	}
}

func TestProcStatsMovingAverage(t *testing.T) {
	p := NewProcStats()
	params := []val.Value{val.NewInt(1)}
	for i := 0; i < 20; i++ {
		p.Observe(params, 1000, 50)
	}
	cpu, card, ok := p.Estimate(params)
	if !ok || math.Abs(cpu-1000) > 1 || math.Abs(card-50) > 1 {
		t.Fatalf("estimate cpu=%g card=%g ok=%v", cpu, card, ok)
	}
	if _, _, ok := NewProcStats().Estimate(params); ok {
		t.Fatal("empty stats should not estimate")
	}
}

func TestProcStatsSpecialParams(t *testing.T) {
	p := NewProcStats()
	normal := []val.Value{val.NewInt(1)}
	outlier := []val.Value{val.NewInt(99)}
	for i := 0; i < 10; i++ {
		p.Observe(normal, 1000, 50)
	}
	// The outlier returns 100× the cardinality: managed separately.
	p.Observe(outlier, 1000, 5000)
	if p.Specials() == 0 {
		t.Fatal("outlier parameters should get their own record")
	}
	_, cardN, _ := p.Estimate(normal)
	_, cardO, _ := p.Estimate(outlier)
	if cardO < 10*cardN {
		t.Fatalf("special estimate %g should dwarf normal %g", cardO, cardN)
	}
}

func TestQError(t *testing.T) {
	if QError(10, 10) != 1 {
		t.Fatal("exact estimate has q-error 1")
	}
	if QError(1, 100) != 100 || QError(100, 1) != 100 {
		t.Fatal("q-error symmetric")
	}
	if QError(0, 0) != 1 {
		t.Fatal("both floored at 1")
	}
}

func TestDensitySkewVsUniform(t *testing.T) {
	skew := BuildFromValues(val.KInt, zipfValues(14, 20000, 1000, 1.5), 32)
	uni := BuildFromValues(val.KInt, uniformValues(15, 20000, 1000), 32)
	// Density describes the tail: for Zipf the tail values are rare, so
	// density should be far below the uniform 1/1000.
	if skew.Density() >= uni.Density() {
		t.Fatalf("zipf density %g should be below uniform %g", skew.Density(), uni.Density())
	}
}
