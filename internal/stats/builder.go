package stats

import (
	"math"
	"sort"

	"anywheredb/internal/val"
)

// Builder constructs a histogram from a stream of values, as when LOAD
// TABLE, CREATE INDEX, or CREATE STATISTICS runs (§3.2). It is a modified
// form of Greenwald's self-scaling approach: instead of retaining the full
// cumulative distribution it keeps a bounded reservoir of samples plus
// exact counts for candidate frequent values (space-saving), significantly
// reducing the overhead of statistics collection with a marginal reduction
// in quality.
type Builder struct {
	kind val.Kind

	n        int64
	nulls    int64
	samples  []float64 // reservoir of order-preserving hashes
	maxSamp  int
	seen     int64
	rngState uint64

	// Space-saving frequent-value candidates.
	counts    map[float64]int64
	maxCounts int
}

// NewBuilder returns a histogram builder for values of the given kind.
func NewBuilder(kind val.Kind) *Builder {
	return &Builder{
		kind:      kind,
		maxSamp:   2048,
		counts:    make(map[float64]int64),
		maxCounts: 4 * MaxSingletons,
		rngState:  0x9E3779B97F4A7C15,
	}
}

func (b *Builder) rand() uint64 {
	// xorshift64*: deterministic, cheap, good enough for reservoir sampling.
	b.rngState ^= b.rngState >> 12
	b.rngState ^= b.rngState << 25
	b.rngState ^= b.rngState >> 27
	return b.rngState * 2685821657736338717
}

// Add feeds one value.
func (b *Builder) Add(v val.Value) {
	b.n++
	if v.IsNull() {
		b.nulls++
		return
	}
	x := val.OrderHash(v)

	// Reservoir sample for quantiles.
	b.seen++
	if len(b.samples) < b.maxSamp {
		b.samples = append(b.samples, x)
	} else if j := b.rand() % uint64(b.seen); j < uint64(b.maxSamp) {
		b.samples[j] = x
	}

	// Space-saving counter for frequent values.
	if c, ok := b.counts[x]; ok {
		b.counts[x] = c + 1
		return
	}
	if len(b.counts) < b.maxCounts {
		b.counts[x] = 1
		return
	}
	// Evict the minimum and take over its count (space-saving).
	minK, minC := 0.0, int64(math.MaxInt64)
	for k, c := range b.counts {
		if c < minC {
			minK, minC = k, c
		}
	}
	delete(b.counts, minK)
	b.counts[x] = minC + 1
}

// Build produces the histogram, with targetBuckets equi-depth buckets and
// up to MaxSingletons frequent-value buckets. If the column is
// low-cardinality the result is the compressed all-singleton form.
func (b *Builder) Build(targetBuckets int) *Histogram {
	h := NewHistogram(b.kind)
	h.nulls = float64(b.nulls)
	nonNull := float64(b.n - b.nulls)
	if nonNull == 0 {
		return h
	}
	if targetBuckets < 4 {
		targetBuckets = 4
	}
	h.maxBuckets = 4 * targetBuckets

	// Promote frequent values (≥1% or top-N) to singletons. A value whose
	// exact count was tracked and which covers every row (low-cardinality
	// column) yields the compressed representation.
	type freq struct {
		hash float64
		rows float64
	}
	var freqs []freq
	var trackedRows int64
	for k, c := range b.counts {
		trackedRows += c
		freqs = append(freqs, freq{k, float64(c)})
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i].rows > freqs[j].rows })
	exact := trackedRows == b.n-b.nulls && len(b.counts) < b.maxCounts

	singled := map[float64]bool{}
	for i, f := range freqs {
		isTop := i < MaxSingletons && (exact && len(freqs) <= MaxSingletons)
		if f.rows >= singletonFraction*nonNull || isTop {
			if len(h.singletons) >= MaxSingletons {
				break
			}
			h.singletons = append(h.singletons, Singleton{Hash: f.hash, Rows: f.rows})
			singled[f.hash] = true
		}
	}
	sort.Slice(h.singletons, func(i, j int) bool { return h.singletons[i].Hash < h.singletons[j].Hash })

	var singletonRows float64
	for _, s := range h.singletons {
		singletonRows += s.Rows
	}
	tailRows := nonNull - singletonRows
	if tailRows <= 0 || (exact && len(freqs) <= MaxSingletons) {
		// Compressed representation: singletons only.
		h.distinct = 0
		return h
	}

	// Equi-depth boundaries from the sampled CDF, excluding singleton
	// sample points so buckets describe the tail.
	tail := b.samples[:0:0]
	for _, x := range b.samples {
		if !singled[x] {
			tail = append(tail, x)
		}
	}
	if len(tail) == 0 {
		tail = append(tail, b.samples...)
	}
	sort.Float64s(tail)

	nb := targetBuckets
	if nb > len(tail) {
		nb = len(tail)
	}
	per := tailRows / float64(nb)
	distinctTail := map[float64]bool{}
	for _, x := range tail {
		distinctTail[x] = true
	}
	h.distinct = float64(len(distinctTail))
	if exact {
		h.distinct = float64(len(freqs) - len(h.singletons))
	} else if b.seen > int64(len(b.samples)) {
		// Scale the sampled distinct count toward the population, but no
		// further than the domain permits: a discrete domain of width w
		// spanning [min,max] holds at most (max-min)/w + 1 values.
		h.distinct *= float64(b.seen) / float64(len(b.samples))
		if h.width > 0 && len(tail) > 0 {
			span := tail[len(tail)-1] - tail[0]
			if maxDistinct := span/h.width + 1; h.distinct > maxDistinct {
				h.distinct = maxDistinct
			}
		}
	}

	for i := 0; i < nb; i++ {
		loIdx := i * len(tail) / nb
		hiIdx := (i + 1) * len(tail) / nb
		lo := tail[loIdx]
		var hi float64
		if hiIdx >= len(tail) {
			hi = math.Nextafter(tail[len(tail)-1]+h.width, math.Inf(1))
		} else {
			hi = tail[hiIdx]
		}
		if hi <= lo {
			hi = math.Nextafter(lo+h.width, math.Inf(1))
		}
		h.buckets = append(h.buckets, Bucket{Lo: lo, Hi: hi, Rows: per})
	}
	// Coalesce zero-width artifacts.
	out := h.buckets[:1]
	for _, bk := range h.buckets[1:] {
		last := &out[len(out)-1]
		if bk.Lo < last.Hi {
			last.Hi = math.Max(last.Hi, bk.Hi)
			last.Rows += bk.Rows
		} else {
			out = append(out, bk)
		}
	}
	h.buckets = out
	return h
}

// BuildFromValues is a convenience constructing a histogram from a slice.
func BuildFromValues(kind val.Kind, vals []val.Value, targetBuckets int) *Histogram {
	b := NewBuilder(kind)
	for _, v := range vals {
		b.Add(v)
	}
	return b.Build(targetBuckets)
}
