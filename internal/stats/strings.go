package stats

import (
	"strings"
	"sync"

	"anywheredb/internal/val"
)

// PredOp is the relational operator of a long-string statistics bucket
// (§3.1): equality, non-equality, BETWEEN, IS NULL, or LIKE.
type PredOp uint8

const (
	OpEq PredOp = iota
	OpNe
	OpBetween
	OpIsNull
	OpLike
)

// StringStats is the separate statistics infrastructure for longer string
// and binary columns: instead of saving potentially very long values as
// bucket boundaries, it dynamically maintains a list of observed predicates
// keyed by a non-order-preserving hash, each with its observed selectivity.
// When statistics are collected, buckets are created not only for entire
// string values but also for the "words" within them, which makes LIKE
// '%word%' patterns estimable (§3.1).
type StringStats struct {
	mu       sync.RWMutex
	buckets  map[strKey]*strObs
	maxEntry int
	tick     uint64
}

type strKey struct {
	hash uint64
	op   PredOp
}

type strObs struct {
	sel      float64
	n        float64
	lastUsed uint64
}

// NewStringStats returns an empty long-string statistics set.
func NewStringStats() *StringStats {
	return &StringStats{buckets: make(map[strKey]*strObs), maxEntry: 512}
}

// Buckets reports the number of predicate buckets retained.
func (s *StringStats) Buckets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buckets)
}

// Observe records the true selectivity of a predicate evaluated during
// query execution, as a moving average.
func (s *StringStats) Observe(op PredOp, operand string, sel float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	key := strKey{val.Hash64(val.NewStr(operand)), op}
	if o, ok := s.buckets[key]; ok {
		o.n++
		o.sel += (sel - o.sel) / o.n
		o.lastUsed = s.tick
		return
	}
	if len(s.buckets) >= s.maxEntry {
		s.evictLocked()
	}
	s.buckets[key] = &strObs{sel: sel, n: 1, lastUsed: s.tick}
}

// ObserveValue records statistics for a stored string value: a bucket for
// the whole value (equality) and one per word (LIKE), each weighted by the
// fraction of rows carrying it.
func (s *StringStats) ObserveValue(value string, rowFraction float64) {
	s.Observe(OpEq, value, rowFraction)
	for _, w := range val.Words(value) {
		s.ObserveWord(w, rowFraction)
	}
}

// ObserveWord accumulates the fraction of rows whose value contains word.
func (s *StringStats) ObserveWord(word string, rowFraction float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	key := strKey{val.Hash64(val.NewStr(word)), OpLike}
	if o, ok := s.buckets[key]; ok {
		// Word buckets accumulate: multiple rows contribute fractions.
		o.sel += rowFraction
		if o.sel > 1 {
			o.sel = 1
		}
		o.lastUsed = s.tick
		return
	}
	if len(s.buckets) >= s.maxEntry {
		s.evictLocked()
	}
	s.buckets[key] = &strObs{sel: rowFraction, n: 1, lastUsed: s.tick}
}

func (s *StringStats) evictLocked() {
	// Drop the least recently used bucket.
	var victim strKey
	oldest := ^uint64(0)
	for k, o := range s.buckets {
		if o.lastUsed < oldest {
			oldest = o.lastUsed
			victim = k
		}
	}
	delete(s.buckets, victim)
}

// Estimate returns the remembered selectivity for a predicate, if any.
func (s *StringStats) Estimate(op PredOp, operand string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if o, ok := s.buckets[strKey{val.Hash64(val.NewStr(operand)), op}]; ok {
		return o.sel, true
	}
	return 0, false
}

// EstimateLike estimates a LIKE pattern: an exact bucket for the pattern if
// one was observed; otherwise, if the pattern is of the common
// word-matching form '%word%', the word's bucket.
func (s *StringStats) EstimateLike(pattern string) (float64, bool) {
	if sel, ok := s.Estimate(OpLike, pattern); ok {
		return sel, true
	}
	inner := strings.Trim(pattern, "%")
	if inner != "" && !strings.ContainsAny(inner, "%_") && inner != pattern {
		if sel, ok := s.Estimate(OpLike, inner); ok {
			return sel, true
		}
	}
	return 0, false
}
