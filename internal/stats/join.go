package stats

import (
	"math"
	"sort"
)

// JoinCard estimates the cardinality of an equijoin between two columns
// from their histograms. Join histograms are computed on the fly during
// optimization (§3.2): boundaries of both histograms are merged and each
// aligned segment contributes r1·r2/max(d1,d2) under the containment
// assumption; matching singleton buckets join exactly.
func JoinCard(a, b *Histogram) float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()

	var card float64

	// Singleton × singleton: exact frequent-value matches.
	bi := 0
	for _, sa := range a.singletons {
		for bi < len(b.singletons) && b.singletons[bi].Hash < sa.Hash {
			bi++
		}
		if bi < len(b.singletons) && b.singletons[bi].Hash == sa.Hash {
			card += sa.Rows * b.singletons[bi].Rows
		}
	}

	// Singleton × tail: a frequent value on one side joins the other
	// side's tail at its density.
	db := b.densityLocked()
	totB := b.totalLocked() - b.nulls
	for _, sa := range a.singletons {
		if _, dup := b.findSingleton(sa.Hash); dup {
			continue
		}
		if insideAny(b.buckets, sa.Hash) {
			card += sa.Rows * db * totB
		}
	}
	da := a.densityLocked()
	totA := a.totalLocked() - a.nulls
	for _, sb := range b.singletons {
		if _, dup := a.findSingleton(sb.Hash); dup {
			continue
		}
		if insideAny(a.buckets, sb.Hash) {
			card += sb.Rows * da * totA
		}
	}

	// Tail × tail: merged-boundary segments with containment.
	bounds := map[float64]bool{}
	for _, bk := range a.buckets {
		bounds[bk.Lo] = true
		bounds[bk.Hi] = true
	}
	for _, bk := range b.buckets {
		bounds[bk.Lo] = true
		bounds[bk.Hi] = true
	}
	xs := make([]float64, 0, len(bounds))
	for x := range bounds {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	distA := math.Max(a.distinct, 1)
	distB := math.Max(b.distinct, 1)
	var tailA, tailB float64
	for _, bk := range a.buckets {
		tailA += bk.Rows
	}
	for _, bk := range b.buckets {
		tailB += bk.Rows
	}
	for i := 0; i+1 < len(xs); i++ {
		lo, hi := xs[i], xs[i+1]
		var ra, rb float64
		for _, bk := range a.buckets {
			ra += overlapRows(bk, lo, hi)
		}
		for _, bk := range b.buckets {
			rb += overlapRows(bk, lo, hi)
		}
		if ra == 0 || rb == 0 {
			continue
		}
		// Distinct values in the segment, proportional to its row share.
		dA := distA * ra / math.Max(tailA, 1e-9)
		dB := distB * rb / math.Max(tailB, 1e-9)
		card += ra * rb / math.Max(math.Max(dA, dB), 1)
	}
	return card
}

func insideAny(buckets []Bucket, x float64) bool {
	for _, b := range buckets {
		if x >= b.Lo && x < b.Hi {
			return true
		}
	}
	return false
}

// JoinSelectivity converts JoinCard into a selectivity relative to the
// Cartesian product.
func JoinSelectivity(a, b *Histogram) float64 {
	ta, tb := a.Total()-aNulls(a), b.Total()-aNulls(b)
	if ta <= 0 || tb <= 0 {
		return 0
	}
	s := JoinCard(a, b) / (ta * tb)
	if s > 1 {
		s = 1
	}
	return s
}

func aNulls(h *Histogram) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nulls
}
