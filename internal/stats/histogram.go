// Package stats implements the self-managing statistics of §3: equi-depth
// histograms whose bucket counts expand and contract as the data changes,
// frequent-value "singleton" buckets, per-column density, join histograms
// computed on the fly, long-string predicate statistics with per-word LIKE
// buckets, and stored-procedure call statistics.
//
// Statistics are gathered as a side effect of query execution — predicate
// evaluation and DML feed observations back into the histograms — rather
// than by explicit scans, a design the engine has used since 1992 (§3).
package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"anywheredb/internal/val"
)

// MaxSingletons bounds the number of frequent-value buckets retained in any
// histogram ([0,100] per §3.1).
const MaxSingletons = 100

// singletonFraction is the frequency at which a value earns a singleton
// bucket (at least 1% of the rows, §3.1).
const singletonFraction = 0.01

// Bucket is one equi-depth range bucket over the order-preserving hash
// domain: it covers [Lo, Hi) and holds Rows rows. Within a bucket the
// uniform-distribution assumption applies.
type Bucket struct {
	Lo, Hi float64
	Rows   float64
}

// Singleton is a frequent-value bucket: an exact domain value (by its
// order-preserving hash) with its row count.
type Singleton struct {
	Hash float64
	Rows float64
}

// Histogram is a self-managing column histogram: traditional equi-depth
// buckets combined with singleton buckets, plus a density measure used for
// values not covered by a singleton.
type Histogram struct {
	mu sync.RWMutex

	Kind       val.Kind
	width      float64 // domain value width (difference of consecutive values)
	buckets    []Bucket
	singletons []Singleton // sorted by Hash
	nulls      float64
	distinct   float64 // estimated distinct non-singleton values
	maxBuckets int
	// seen is a bounded sample of observed tail values, used to maintain
	// the distinct estimate incrementally under DML feedback.
	seen map[float64]struct{}
}

// maxSeenSample bounds the incremental distinct-tracking sample.
const maxSeenSample = 512

// NewHistogram returns an empty histogram for a column of the given kind.
func NewHistogram(kind val.Kind) *Histogram {
	return &Histogram{Kind: kind, width: val.Width(kind), maxBuckets: 64}
}

// Total reports the estimated number of rows (including NULLs).
func (h *Histogram) Total() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.totalLocked()
}

func (h *Histogram) totalLocked() float64 {
	t := h.nulls
	for _, b := range h.buckets {
		t += b.Rows
	}
	for _, s := range h.singletons {
		t += s.Rows
	}
	return t
}

// BucketCount reports the number of range buckets (expands and contracts
// dynamically).
func (h *Histogram) BucketCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets)
}

// SingletonCount reports the number of frequent-value buckets.
func (h *Histogram) SingletonCount() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.singletons)
}

// Compressed reports whether the histogram consists entirely of singleton
// buckets (§3.1's compressed representation for low-cardinality columns).
func (h *Histogram) Compressed() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets) == 0 && len(h.singletons) > 0
}

// Density is the average selectivity of a single value that is not saved
// as a singleton bucket (§3.1): the optimizer's guide for equality
// selectivity on the distribution's tail and for join estimation.
func (h *Histogram) Density() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.densityLocked()
}

func (h *Histogram) densityLocked() float64 {
	var tailRows float64
	for _, b := range h.buckets {
		tailRows += b.Rows
	}
	total := h.totalLocked() - h.nulls
	if total <= 0 {
		return 0
	}
	d := h.distinct
	if d < 1 {
		d = 1
	}
	// Average fraction of rows selected by one non-singleton value.
	return tailRows / d / total
}

// DistinctEstimate reports the estimated number of distinct values
// (singletons plus tail).
func (h *Histogram) DistinctEstimate() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.distinct + float64(len(h.singletons))
}

// --- Estimation ---------------------------------------------------------

// SelEq estimates the selectivity (fraction of all rows) of column = v.
func (h *Histogram) SelEq(v val.Value) float64 {
	if v.IsNull() {
		return 0 // = NULL never matches
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	total := h.totalLocked()
	if total <= 0 {
		return 0.01 // default guess on empty statistics
	}
	x := val.OrderHash(v)
	if s, ok := h.findSingleton(x); ok {
		return s.Rows / total
	}
	d := h.densityLocked()
	if d == 0 {
		return 1 / math.Max(total, 1)
	}
	// Density is relative to non-null rows.
	return d * (total - h.nulls) / total
}

// SelIsNull estimates the selectivity of column IS NULL.
func (h *Histogram) SelIsNull() float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	total := h.totalLocked()
	if total <= 0 {
		return 0.01
	}
	return h.nulls / total
}

// SelRange estimates the selectivity of lo ≤/< column ≤/< hi. Nil bounds
// are open. Interpolation within a bucket assumes uniformity; the value
// width maintains domain discreteness for boundary inclusion.
func (h *Histogram) SelRange(lo, hi *val.Value, loInc, hiInc bool) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	total := h.totalLocked()
	if total <= 0 {
		return 0.1
	}
	loHash := math.Inf(-1)
	hiHash := math.Inf(1)
	if lo != nil {
		loHash = val.OrderHash(*lo)
		if !loInc {
			loHash += h.width
		}
	}
	if hi != nil {
		hiHash = val.OrderHash(*hi)
		if hiInc {
			hiHash += h.width
		}
	}
	if hiHash <= loHash {
		return 0
	}
	var rows float64
	for _, b := range h.buckets {
		rows += overlapRows(b, loHash, hiHash)
	}
	for _, s := range h.singletons {
		if s.Hash >= loHash && s.Hash < hiHash {
			rows += s.Rows
		}
	}
	sel := rows / total
	if sel > 1 {
		sel = 1
	}
	return sel
}

// overlapRows returns the rows of b falling inside [lo, hi).
func overlapRows(b Bucket, lo, hi float64) float64 {
	l := math.Max(b.Lo, lo)
	r := math.Min(b.Hi, hi)
	if r <= l {
		return 0
	}
	span := b.Hi - b.Lo
	if span <= 0 {
		if b.Lo >= lo && b.Lo < hi {
			return b.Rows
		}
		return 0
	}
	return b.Rows * (r - l) / span
}

func (h *Histogram) findSingleton(x float64) (Singleton, bool) {
	i := sort.Search(len(h.singletons), func(i int) bool { return h.singletons[i].Hash >= x })
	if i < len(h.singletons) && h.singletons[i].Hash == x {
		return h.singletons[i], true
	}
	return Singleton{}, false
}

// --- Feedback maintenance (§3.2) ----------------------------------------

// feedbackRate is the exponential learning rate applied to query-feedback
// corrections: observed truth pulls the affected masses toward it without
// letting one aberrant observation destroy the histogram.
const feedbackRate = 0.5

// ObserveEq folds in the true selectivity of an equality predicate
// observed during query execution: the column had observedRows matches out
// of scannedRows scanned.
func (h *Histogram) ObserveEq(v val.Value, observedRows, scannedRows float64) {
	if v.IsNull() || scannedRows <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	total := h.totalLocked()
	if total <= 0 {
		total = scannedRows
	}
	trueRows := observedRows / scannedRows * total
	x := val.OrderHash(v)
	i := sort.Search(len(h.singletons), func(i int) bool { return h.singletons[i].Hash >= x })
	if i < len(h.singletons) && h.singletons[i].Hash == x {
		s := &h.singletons[i]
		s.Rows += feedbackRate * (trueRows - s.Rows)
		if s.Rows < singletonFraction*total/2 {
			// No longer frequent: fold back into the covering bucket.
			h.dropSingletonLocked(i)
		}
		return
	}
	// Frequent enough to deserve a singleton bucket?
	if trueRows >= singletonFraction*total && len(h.singletons) < MaxSingletons {
		h.removeMassLocked(x, trueRows)
		h.singletons = append(h.singletons, Singleton{})
		copy(h.singletons[i+1:], h.singletons[i:])
		h.singletons[i] = Singleton{Hash: x, Rows: trueRows}
		if h.distinct > 1 {
			h.distinct--
		}
		return
	}
	// Tail value: nudge the covering bucket's mass toward consistency with
	// the observed density.
	bi := h.bucketFor(x)
	if bi < 0 {
		return
	}
	b := &h.buckets[bi]
	d := h.densityLocked()
	if d > 0 {
		impliedRows := trueRows / math.Max(d*(total-h.nulls), 1e-9) * b.Rows
		b.Rows += feedbackRate * (impliedRows - b.Rows)
		if b.Rows < 0 {
			b.Rows = 0
		}
	}
}

// ObserveRange folds in the true selectivity of a range predicate.
func (h *Histogram) ObserveRange(lo, hi *val.Value, loInc, hiInc bool, observedRows, scannedRows float64) {
	if scannedRows <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	total := h.totalLocked()
	if total <= 0 {
		return
	}
	loHash := math.Inf(-1)
	hiHash := math.Inf(1)
	if lo != nil {
		loHash = val.OrderHash(*lo)
		if !loInc {
			loHash += h.width
		}
	}
	if hi != nil {
		hiHash = val.OrderHash(*hi)
		if hiInc {
			hiHash += h.width
		}
	}
	var cur float64
	for _, b := range h.buckets {
		cur += overlapRows(b, loHash, hiHash)
	}
	for _, s := range h.singletons {
		if s.Hash >= loHash && s.Hash < hiHash {
			cur += s.Rows
		}
	}
	trueRows := observedRows / scannedRows * total
	if cur <= 0 {
		// The histogram thought the range was empty; grow the overlapped
		// buckets uniformly.
		for i := range h.buckets {
			if overlaps(h.buckets[i], loHash, hiHash) {
				h.buckets[i].Rows += feedbackRate * trueRows
			}
		}
		return
	}
	ratio := 1 + feedbackRate*(trueRows/cur-1)
	for i := range h.buckets {
		b := &h.buckets[i]
		part := overlapRows(*b, loHash, hiHash)
		if part > 0 {
			b.Rows += part*ratio - part
			if b.Rows < 0 {
				b.Rows = 0
			}
		}
	}
	for i := range h.singletons {
		s := &h.singletons[i]
		if s.Hash >= loHash && s.Hash < hiHash {
			s.Rows *= ratio
		}
	}
	h.maybeResizeLocked()
}

func overlaps(b Bucket, lo, hi float64) bool {
	return math.Max(b.Lo, lo) < math.Min(b.Hi, hi)
}

// NoteInsert maintains the histogram for an INSERT of v.
func (h *Histogram) NoteInsert(v val.Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v.IsNull() {
		h.nulls++
		return
	}
	x := val.OrderHash(v)
	i := sort.Search(len(h.singletons), func(i int) bool { return h.singletons[i].Hash >= x })
	if i < len(h.singletons) && h.singletons[i].Hash == x {
		h.singletons[i].Rows++
		return
	}
	bi := h.bucketFor(x)
	if bi < 0 {
		h.addCoveringBucketLocked(x)
		bi = h.bucketFor(x)
	}
	h.buckets[bi].Rows++
	// Maintain the distinct estimate from a bounded sample of tail values.
	if h.seen == nil {
		h.seen = make(map[float64]struct{})
	}
	if _, ok := h.seen[x]; !ok && len(h.seen) < maxSeenSample {
		h.seen[x] = struct{}{}
		h.distinct++
	}
	h.maybeResizeLocked()
}

// NoteDelete maintains the histogram for a DELETE of v.
func (h *Histogram) NoteDelete(v val.Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v.IsNull() {
		if h.nulls > 0 {
			h.nulls--
		}
		return
	}
	x := val.OrderHash(v)
	i := sort.Search(len(h.singletons), func(i int) bool { return h.singletons[i].Hash >= x })
	if i < len(h.singletons) && h.singletons[i].Hash == x {
		h.singletons[i].Rows--
		if h.singletons[i].Rows <= 0 {
			h.singletons = append(h.singletons[:i], h.singletons[i+1:]...)
		}
		return
	}
	if bi := h.bucketFor(x); bi >= 0 && h.buckets[bi].Rows > 0 {
		h.buckets[bi].Rows--
	}
}

// --- Internal maintenance ------------------------------------------------

func (h *Histogram) bucketFor(x float64) int {
	for i := range h.buckets {
		if x >= h.buckets[i].Lo && x < h.buckets[i].Hi {
			return i
		}
	}
	return -1
}

// addCoveringBucketLocked extends the histogram's range to cover x.
func (h *Histogram) addCoveringBucketLocked(x float64) {
	w := math.Max(h.width, math.Abs(x)*1e-6)
	nb := Bucket{Lo: x, Hi: x + w, Rows: 0}
	switch {
	case len(h.buckets) == 0:
		h.buckets = []Bucket{nb}
	case x < h.buckets[0].Lo:
		h.buckets[0].Lo = x
	case x >= h.buckets[len(h.buckets)-1].Hi:
		h.buckets[len(h.buckets)-1].Hi = math.Nextafter(x+w, math.Inf(1))
	default:
		// Inside a gap between buckets (shouldn't happen; buckets abut).
		h.buckets = append(h.buckets, nb)
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].Lo < h.buckets[j].Lo })
	}
}

// removeMassLocked subtracts rows around hash x from the covering bucket
// (used when promoting a value to a singleton).
func (h *Histogram) removeMassLocked(x, rows float64) {
	if bi := h.bucketFor(x); bi >= 0 {
		h.buckets[bi].Rows -= rows
		if h.buckets[bi].Rows < 0 {
			h.buckets[bi].Rows = 0
		}
	}
}

func (h *Histogram) dropSingletonLocked(i int) {
	s := h.singletons[i]
	h.singletons = append(h.singletons[:i], h.singletons[i+1:]...)
	if bi := h.bucketFor(s.Hash); bi >= 0 {
		h.buckets[bi].Rows += s.Rows
	}
	h.distinct++
}

// maybeResizeLocked keeps the histogram equi-depth-ish: buckets that grow
// beyond twice the average depth split; adjacent buckets that together fall
// under half the average merge. The bucket count therefore expands and
// contracts dynamically as the distribution changes (§3.1).
func (h *Histogram) maybeResizeLocked() {
	n := len(h.buckets)
	if n == 0 {
		return
	}
	var total float64
	for _, b := range h.buckets {
		total += b.Rows
	}
	avg := total / float64(n)
	if avg <= 0 {
		return
	}
	// Split oversized buckets: any bucket deeper than twice the target
	// equi-depth (total divided by a quarter of the bucket budget) splits,
	// so even a single seed bucket expands as data pours in.
	targetDepth := 2 * total / math.Max(float64(h.maxBuckets)/4, 4)
	if n < h.maxBuckets {
		out := h.buckets[:0:0]
		for _, b := range h.buckets {
			if b.Rows > math.Max(targetDepth, 8) && b.Hi-b.Lo > 2*h.width && n+len(out)-1 < h.maxBuckets {
				mid := b.Lo + (b.Hi-b.Lo)/2
				out = append(out,
					Bucket{Lo: b.Lo, Hi: mid, Rows: b.Rows / 2},
					Bucket{Lo: mid, Hi: b.Hi, Rows: b.Rows / 2})
			} else {
				out = append(out, b)
			}
		}
		h.buckets = out
	}
	// Merge undersized neighbours.
	if len(h.buckets) > 4 {
		out := h.buckets[:1]
		for _, b := range h.buckets[1:] {
			last := &out[len(out)-1]
			if last.Rows+b.Rows < avg/2 && last.Hi == b.Lo {
				last.Hi = b.Hi
				last.Rows += b.Rows
			} else {
				out = append(out, b)
			}
		}
		h.buckets = out
	}
}

// --- Serialization -------------------------------------------------------

// Encode serializes the histogram for persistent storage in the catalog.
func (h *Histogram) Encode() []byte {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b []byte
	b = append(b, byte(h.Kind))
	b = binary.AppendUvarint(b, math.Float64bits(h.nulls))
	b = binary.AppendUvarint(b, math.Float64bits(h.distinct))
	b = binary.AppendUvarint(b, uint64(len(h.buckets)))
	for _, bk := range h.buckets {
		b = binary.AppendUvarint(b, math.Float64bits(bk.Lo))
		b = binary.AppendUvarint(b, math.Float64bits(bk.Hi))
		b = binary.AppendUvarint(b, math.Float64bits(bk.Rows))
	}
	b = binary.AppendUvarint(b, uint64(len(h.singletons)))
	for _, s := range h.singletons {
		b = binary.AppendUvarint(b, math.Float64bits(s.Hash))
		b = binary.AppendUvarint(b, math.Float64bits(s.Rows))
	}
	return b
}

// DecodeHistogram reverses Encode.
func DecodeHistogram(data []byte) (*Histogram, error) {
	bad := fmt.Errorf("stats: corrupt histogram")
	if len(data) < 1 {
		return nil, bad
	}
	h := NewHistogram(val.Kind(data[0]))
	data = data[1:]
	u := func() (float64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return math.Float64frombits(v), true
	}
	var ok bool
	if h.nulls, ok = u(); !ok {
		return nil, bad
	}
	if h.distinct, ok = u(); !ok {
		return nil, bad
	}
	nb, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, bad
	}
	data = data[n:]
	for i := uint64(0); i < nb; i++ {
		var bk Bucket
		if bk.Lo, ok = u(); !ok {
			return nil, bad
		}
		if bk.Hi, ok = u(); !ok {
			return nil, bad
		}
		if bk.Rows, ok = u(); !ok {
			return nil, bad
		}
		h.buckets = append(h.buckets, bk)
	}
	ns, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, bad
	}
	data = data[n:]
	for i := uint64(0); i < ns; i++ {
		var s Singleton
		if s.Hash, ok = u(); !ok {
			return nil, bad
		}
		if s.Rows, ok = u(); !ok {
			return nil, bad
		}
		h.singletons = append(h.singletons, s)
	}
	return h, nil
}
