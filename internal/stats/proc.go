package stats

import (
	"math"
	"sync"

	"anywheredb/internal/val"
)

// ProcStats summarizes previous invocations of a stored procedure used in a
// FROM clause (§3.2): a moving average of total CPU time and result
// cardinality, persisted for the optimization of subsequent queries, plus
// separately-managed statistics for specific parameter values whose
// behaviour differs sufficiently from the average.
type ProcStats struct {
	mu sync.RWMutex

	n        float64
	avgCPU   float64 // microseconds, exponentially-weighted moving average
	avgCard  float64
	specials map[uint64]*procSpecial
}

type procSpecial struct {
	n       float64
	avgCPU  float64
	avgCard float64
}

// movingAlpha is the EWMA weight of a new observation.
const movingAlpha = 0.25

// specialDeviation is how far (multiplicatively) a parameter value's
// cardinality must deviate from the moving average before it earns its own
// statistics record.
const specialDeviation = 4.0

// maxSpecials bounds the per-parameter records retained.
const maxSpecials = 32

// NewProcStats returns empty procedure statistics.
func NewProcStats() *ProcStats {
	return &ProcStats{specials: make(map[uint64]*procSpecial)}
}

// Observe records one invocation: its parameter values, CPU time, and
// result cardinality.
func (p *ProcStats) Observe(params []val.Value, cpuMicros, card float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := val.HashRow(params)
	if sp, ok := p.specials[key]; ok {
		// Managed separately: does not pollute the global moving average.
		sp.n++
		sp.avgCPU += movingAlpha * (cpuMicros - sp.avgCPU)
		sp.avgCard += movingAlpha * (card - sp.avgCard)
		return
	}
	// A parameter set that deviates sufficiently from the moving average
	// earns its own record and is managed separately from then on.
	if p.n >= 1 && (deviates(card, p.avgCard) || deviates(cpuMicros, p.avgCPU)) {
		if len(p.specials) < maxSpecials {
			p.specials[key] = &procSpecial{n: 1, avgCPU: cpuMicros, avgCard: card}
			return
		}
	}
	p.n++
	if p.n == 1 {
		p.avgCPU, p.avgCard = cpuMicros, card
	} else {
		p.avgCPU += movingAlpha * (cpuMicros - p.avgCPU)
		p.avgCard += movingAlpha * (card - p.avgCard)
	}
}

func deviates(x, avg float64) bool {
	if avg <= 0 {
		return x > 0
	}
	r := x / avg
	return r >= specialDeviation || r <= 1/specialDeviation
}

// Estimate predicts (cpuMicros, cardinality) for an invocation with the
// given parameters, preferring a parameter-specific record.
func (p *ProcStats) Estimate(params []val.Value) (cpu, card float64, known bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if sp, ok := p.specials[val.HashRow(params)]; ok {
		return sp.avgCPU, sp.avgCard, true
	}
	if p.n == 0 {
		return 0, 0, false
	}
	return p.avgCPU, p.avgCard, true
}

// Specials reports how many parameter-specific records exist.
func (p *ProcStats) Specials() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.specials)
}

// QError is the standard estimation-quality metric: max(est/true,
// true/est), with both floored at 1 row. Used by the E9 experiment.
func QError(est, truth float64) float64 {
	est = math.Max(est, 1)
	truth = math.Max(truth, 1)
	return math.Max(est/truth, truth/est)
}
