package txn

import (
	"testing"
	"time"

	"anywheredb/internal/buffer"
	"anywheredb/internal/lock"
	"anywheredb/internal/store"
	"anywheredb/internal/wal"
)

func setup(t *testing.T) (*Manager, *wal.Log) {
	t.Helper()
	log, err := wal.Open("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	pool := buffer.New(st, 4, 64, 64)
	locks, err := lock.NewManager(pool, st)
	if err != nil {
		t.Fatal(err)
	}
	locks.Timeout = 100 * time.Millisecond
	return NewManager(log, locks), log
}

func logTypes(t *testing.T, log *wal.Log) []wal.RecType {
	t.Helper()
	var types []wal.RecType
	if err := log.Scan(func(_ uint64, r *wal.Record) error {
		types = append(types, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return types
}

func TestCommitWritesLog(t *testing.T) {
	m, log := setup(t)
	tx := m.Begin()
	tx.Log(&wal.Record{Type: wal.RecInsert, Table: 3, After: []byte("r")})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	types := logTypes(t, log)
	want := []wal.RecType{wal.RecBegin, wal.RecInsert, wal.RecCommit}
	if len(types) != len(want) {
		t.Fatalf("log: %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("log: %v", types)
		}
	}
	if m.Active() != 0 {
		t.Fatal("transaction still active after commit")
	}
}

func TestRollbackRunsUndoInReverse(t *testing.T) {
	m, log := setup(t)
	tx := m.Begin()
	var order []int
	tx.OnRollback(func() error { order = append(order, 1); return nil })
	tx.OnRollback(func() error { order = append(order, 2); return nil })
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order %v, want [2 1]", order)
	}
	types := logTypes(t, log)
	if types[len(types)-1] != wal.RecRollback {
		t.Fatalf("last record %v, want rollback", types[len(types)-1])
	}
}

func TestDoubleFinish(t *testing.T) {
	m, _ := setup(t)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrDone {
		t.Fatalf("second commit: %v", err)
	}
	if err := tx.Rollback(); err != ErrDone {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestLocksReleasedOnCommit(t *testing.T) {
	m, _ := setup(t)
	a := m.Begin()
	if err := a.Lock(7, []byte("row"), lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	b := m.Begin()
	if err := b.Lock(7, []byte("row"), lock.Exclusive); err != lock.ErrTimeout {
		t.Fatalf("b should block: %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(7, []byte("row"), lock.Exclusive); err != nil {
		t.Fatalf("b after a commits: %v", err)
	}
	b.Rollback()
}

func TestLocksReleasedOnRollback(t *testing.T) {
	m, _ := setup(t)
	a := m.Begin()
	a.Lock(7, []byte("row"), lock.Exclusive)
	a.Rollback()
	b := m.Begin()
	if err := b.Lock(7, []byte("row"), lock.Exclusive); err != nil {
		t.Fatalf("lock after rollback: %v", err)
	}
	b.Commit()
}

func TestNilLockManager(t *testing.T) {
	log, _ := wal.Open("")
	m := NewManager(log, nil)
	tx := m.Begin()
	if err := tx.Lock(1, []byte("k"), lock.Exclusive); err != nil {
		t.Fatalf("nil lock manager should no-op: %v", err)
	}
	tx.Commit()
}

func TestIDsIncrease(t *testing.T) {
	m, _ := setup(t)
	a, b := m.Begin(), m.Begin()
	if b.ID() <= a.ID() {
		t.Fatal("ids must increase")
	}
	if !a.Done() {
		a.Rollback()
	}
	b.Rollback()
}

func TestUndoErrorReported(t *testing.T) {
	m, _ := setup(t)
	tx := m.Begin()
	wantErr := errFake{}
	tx.OnRollback(func() error { return wantErr })
	if err := tx.Rollback(); err != wantErr {
		t.Fatalf("rollback error %v, want fake", err)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake undo failure" }
