// Package txn provides ACID transactions over the write-ahead log and the
// lock manager: begin/commit/rollback, with undo actions collected as the
// transaction modifies data.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"anywheredb/internal/faultinject"
	"anywheredb/internal/lock"
	"anywheredb/internal/wal"
)

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("txn: transaction already committed or rolled back")

// Manager creates transactions and owns the id sequence.
type Manager struct {
	log   *wal.Log
	locks *lock.Manager
	inj   faultinject.Injector

	mu     sync.Mutex
	next   uint64
	active map[uint64]*Txn

	// commitWaitObs, when set, is called with the transaction id and the
	// wall-clock microseconds Commit/Rollback spent blocked in the WAL
	// flush. The id lets the flight recorder attribute the wait to the
	// statement span bound to the transaction.
	commitWaitObs atomic.Pointer[func(txnID uint64, us int64)]
}

// SetCommitWaitObserver installs (or replaces) the commit durability-wait
// observer. A nil f uninstalls.
func (m *Manager) SetCommitWaitObserver(f func(txnID uint64, us int64)) {
	if f == nil {
		m.commitWaitObs.Store(nil)
		return
	}
	m.commitWaitObs.Store(&f)
}

// flushTo is the FlushTo wait path for one transaction, timed for the
// commit-wait observer.
func (m *Manager) flushTo(id uint64, lsn wal.LSN) error {
	f := m.commitWaitObs.Load()
	if f == nil {
		return m.log.FlushTo(lsn)
	}
	start := time.Now()
	err := m.log.FlushTo(lsn)
	(*f)(id, time.Since(start).Microseconds())
	return err
}

// NewManager builds a transaction manager. locks may be nil for a
// single-user (embedded, exclusive) database.
func NewManager(log *wal.Log, locks *lock.Manager) *Manager {
	return &Manager{log: log, locks: locks, next: 1, active: map[uint64]*Txn{}}
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	id := m.next
	m.next++
	t := &Txn{id: id, m: m}
	m.active[id] = t
	m.mu.Unlock()
	m.log.Append(&wal.Record{Type: wal.RecBegin, Txn: id})
	return t
}

// Active reports the number of in-flight transactions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Log exposes the transaction log (for checkpointing).
func (m *Manager) Log() *wal.Log { return m.log }

// SetInjector arms named commit-path crashpoints. inj may be nil.
func (m *Manager) SetInjector(inj faultinject.Injector) {
	m.mu.Lock()
	m.inj = inj
	m.mu.Unlock()
}

func (m *Manager) crashpoint(name string) error {
	m.mu.Lock()
	inj := m.inj
	m.mu.Unlock()
	if inj == nil {
		return nil
	}
	return inj.Crashpoint(name)
}

// Txn is one transaction. A Txn is used by a single goroutine.
type Txn struct {
	id   uint64
	m    *Manager
	undo []func() error
	done bool
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Done reports whether the transaction has finished.
func (t *Txn) Done() bool { return t.done }

// Log appends a data record to the WAL on this transaction's behalf.
func (t *Txn) Log(rec *wal.Record) {
	rec.Txn = t.id
	t.m.log.Append(rec)
}

// OnRollback registers a compensating action, run in reverse order if the
// transaction rolls back.
func (t *Txn) OnRollback(f func() error) {
	t.undo = append(t.undo, f)
}

// Lock acquires a long-term lock for the transaction. With no lock manager
// (single-user database) it is a no-op.
func (t *Txn) Lock(obj uint64, key []byte, mode lock.Mode) error {
	if t.m.locks == nil {
		return nil
	}
	return t.m.locks.Lock(t.id, obj, key, mode)
}

// Commit makes the transaction durable: commit record, group flush, lock
// release. The commit LSN is captured at append time and the wait happens
// via FlushTo, so concurrent committers share one leader's fsync (group
// commit) instead of each paying their own. A crash before the flush
// leaves the transaction a loser (it is undone at recovery); a crash after
// the flush leaves it durable even though the caller saw an error — the
// classic indeterminate commit.
//
// When the group's flush fails, every transaction waiting on it gets the
// error, and each compensates its in-memory changes before returning: the
// engine may keep serving reads (degraded mode), and those reads must not
// see data the caller was just told did not commit. A rollback record is
// appended behind the stranded commit record, so if a later flush lands
// both the transaction is still recovered as rolled back.
func (t *Txn) Commit() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	if err := t.m.crashpoint("commit.before_flush"); err != nil {
		t.compensate()
		t.finish()
		return err
	}
	lsn := t.m.log.Append(&wal.Record{Type: wal.RecCommit, Txn: t.id})
	if err := t.m.flushTo(t.id, lsn); err != nil {
		t.compensate()
		t.finish()
		return err
	}
	if err := t.m.crashpoint("commit.after_flush"); err != nil {
		// The commit IS durable; only the caller's acknowledgement was
		// lost. In-memory state already matches the durable state, so no
		// compensation here.
		t.finish()
		return err
	}
	t.finish()
	return nil
}

// compensate undoes the transaction's in-memory changes after a failed
// commit flush. Undo errors are ignored: on a crashed or failed device the
// in-memory state is about to be discarded anyway, and recovery will undo
// from the log.
func (t *Txn) compensate() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		_ = t.undo[i]()
	}
	t.m.log.Append(&wal.Record{Type: wal.RecRollback, Txn: t.id})
}

// Rollback undoes the transaction's changes (reverse order) and releases
// its locks.
func (t *Txn) Rollback() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	lsn := t.m.log.Append(&wal.Record{Type: wal.RecRollback, Txn: t.id})
	if err := t.m.flushTo(t.id, lsn); err != nil && firstErr == nil {
		firstErr = err
	}
	t.finish()
	return firstErr
}

func (t *Txn) finish() {
	if t.m.locks != nil {
		_ = t.m.locks.ReleaseAll(t.id)
	}
	t.m.mu.Lock()
	delete(t.m.active, t.id)
	t.m.mu.Unlock()
	t.undo = nil
}
