// Package txn provides ACID transactions over the write-ahead log and the
// lock manager: begin/commit/rollback, with undo actions collected as the
// transaction modifies data.
package txn

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"anywheredb/internal/faultinject"
	"anywheredb/internal/lock"
	"anywheredb/internal/mvcc"
	"anywheredb/internal/wal"
)

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("txn: transaction already committed or rolled back")

// Manager creates transactions and owns the id sequence.
type Manager struct {
	log   *wal.Log
	locks *lock.Manager
	inj   faultinject.Injector

	mu     sync.Mutex
	next   uint64
	active map[uint64]*Txn

	// applied tracks primary transaction ids currently being replayed by a
	// replica's streaming applier. They have no *Txn — the applier drives
	// them record by record — but vacuum's writer-gone rule must still see
	// them as in flight, or it would reclaim their uncommitted version
	// entries mid-replay.
	applied map[uint64]struct{}

	// commitMu serializes commit publication so the commit sequence is
	// dense and every snapshot watermark is a consistent prefix: a commit
	// stamps all its version entries with the next CSN, then advances
	// commitSeq. Snapshots read commitSeq, so a half-stamped commit is
	// always above their watermark (invisible) until published.
	commitMu  sync.Mutex
	commitSeq atomic.Uint64

	// snapMu guards the registry of live snapshots (statement snapshots
	// and BEGIN READ ONLY transaction snapshots); vacuum computes its
	// reclaim threshold under the same mutex so a snapshot can never be
	// acquired "in the past" of a concurrent vacuum pass.
	snapMu sync.Mutex
	snaps  map[uint64]snapState

	// commitWaitObs, when set, is called with the transaction id and the
	// wall-clock microseconds Commit/Rollback spent blocked in the WAL
	// flush. The id lets the flight recorder attribute the wait to the
	// statement span bound to the transaction.
	commitWaitObs atomic.Pointer[func(txnID uint64, us int64)]

	// reclaimObs, when set, receives the number of version entries each
	// eager commit/rollback reclamation freed (telemetry).
	reclaimObs atomic.Pointer[func(n int)]
}

// SetReclaimObserver installs (or replaces) the eager-reclaim observer. A
// nil f uninstalls.
func (m *Manager) SetReclaimObserver(f func(n int)) {
	if f == nil {
		m.reclaimObs.Store(nil)
		return
	}
	m.reclaimObs.Store(&f)
}

func (m *Manager) noteReclaim(n int) {
	if f := m.reclaimObs.Load(); f != nil {
		(*f)(n)
	}
}

// SetCommitWaitObserver installs (or replaces) the commit durability-wait
// observer. A nil f uninstalls.
func (m *Manager) SetCommitWaitObserver(f func(txnID uint64, us int64)) {
	if f == nil {
		m.commitWaitObs.Store(nil)
		return
	}
	m.commitWaitObs.Store(&f)
}

// flushTo is the FlushTo wait path for one transaction, timed for the
// commit-wait observer.
func (m *Manager) flushTo(id uint64, lsn wal.LSN) error {
	f := m.commitWaitObs.Load()
	if f == nil {
		return m.log.FlushTo(lsn)
	}
	start := time.Now()
	err := m.log.FlushTo(lsn)
	(*f)(id, time.Since(start).Microseconds())
	return err
}

// NewManager builds a transaction manager. locks may be nil for a
// single-user (embedded, exclusive) database.
func NewManager(log *wal.Log, locks *lock.Manager) *Manager {
	return &Manager{log: log, locks: locks, next: 1, active: map[uint64]*Txn{},
		applied: map[uint64]struct{}{}, snaps: map[uint64]snapState{}}
}

// StartIDsAt raises the local id sequence floor to base. A replica calls it
// so locally issued ids (read-only transactions, snapshots) can never
// collide with the primary transaction ids arriving in the shipped WAL
// stream — a collision would make Snapshot.Self match a streaming writer
// and expose its uncommitted versions to a local reader.
func (m *Manager) StartIDsAt(base uint64) {
	m.mu.Lock()
	if m.next < base {
		m.next = base
	}
	m.mu.Unlock()
}

// Begin starts a read-write transaction.
func (m *Manager) Begin() *Txn {
	t := m.begin(false)
	m.log.Append(&wal.Record{Type: wal.RecBegin, Txn: t.id})
	return t
}

// BeginRO starts a read-only transaction. It writes nothing to the WAL —
// there is nothing to recover — and Commit/Rollback only release whatever
// locks it took (none on the snapshot path) and deregister it.
func (m *Manager) BeginRO() *Txn {
	return m.begin(true)
}

func (m *Manager) begin(ro bool) *Txn {
	m.mu.Lock()
	id := m.next
	m.next++
	t := &Txn{id: id, m: m, ro: ro, began: time.Now()}
	m.active[id] = t
	m.mu.Unlock()
	return t
}

// Active reports the number of in-flight transactions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// IsActive reports whether the given transaction is still in flight.
// Vacuum uses it to distinguish a rolled-back version entry (writer gone,
// CSN never published) from one whose writer may yet commit.
func (m *Manager) IsActive(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.active[id]; ok {
		return true
	}
	_, ok := m.applied[id]
	return ok
}

// BeginApplied registers a primary transaction id a streaming applier is
// replaying, so IsActive covers it (see the applied field).
func (m *Manager) BeginApplied(id uint64) {
	m.mu.Lock()
	m.applied[id] = struct{}{}
	m.mu.Unlock()
}

// FinishApplied deregisters an applied transaction after its commit has
// been published (or its rollback undone).
func (m *Manager) FinishApplied(id uint64) {
	m.mu.Lock()
	delete(m.applied, id)
	m.mu.Unlock()
}

// PublishApplied stamps a replayed transaction's version entries with the
// next commit sequence number and advances the published horizon — the
// applier-side twin of Txn.publish, with the same dense-CSN invariant.
func (m *Manager) PublishApplied(entries []*mvcc.Entry) {
	if len(entries) == 0 {
		return
	}
	m.commitMu.Lock()
	csn := m.commitSeq.Load() + 1
	for _, e := range entries {
		e.SetCSN(csn)
	}
	m.commitSeq.Store(csn)
	m.commitMu.Unlock()
}

// CommitSeq returns the published commit horizon.
func (m *Manager) CommitSeq() uint64 { return m.commitSeq.Load() }

// snapState is one live snapshot in the registry.
type snapState struct {
	csn   uint64
	began time.Time
}

// AcquireSnapshot registers and returns a new snapshot at the current
// commit horizon. self, when nonzero, is the read-write transaction the
// snapshot serves (its own uncommitted writes stay visible to it). The
// snapshot pins versions from reclamation until ReleaseSnapshot.
func (m *Manager) AcquireSnapshot(self uint64) *mvcc.Snapshot {
	m.mu.Lock()
	id := m.next
	m.next++
	m.mu.Unlock()
	m.snapMu.Lock()
	csn := m.commitSeq.Load()
	m.snaps[id] = snapState{csn: csn, began: time.Now()}
	m.snapMu.Unlock()
	return &mvcc.Snapshot{ID: id, CSN: csn, Self: self}
}

// ReleaseSnapshot unpins s. Safe on nil.
func (m *Manager) ReleaseSnapshot(s *mvcc.Snapshot) {
	if s == nil {
		return
	}
	m.snapMu.Lock()
	delete(m.snaps, s.ID)
	m.snapMu.Unlock()
}

// VacuumThreshold returns the CSN at or below which every live and future
// snapshot sees all commits: the oldest active snapshot's watermark, or
// the commit horizon when no snapshot is open. Reading commitSeq under
// snapMu (the same mutex AcquireSnapshot registers under) guarantees no
// snapshot older than the returned threshold can appear afterwards.
func (m *Manager) VacuumThreshold() uint64 {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	th := m.commitSeq.Load()
	for _, s := range m.snaps {
		if s.csn < th {
			th = s.csn
		}
	}
	return th
}

// OldestSnapshot returns the smallest watermark among live snapshots, and
// whether any snapshot is live at all.
func (m *Manager) OldestSnapshot() (uint64, bool) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	var oldest uint64
	found := false
	for _, s := range m.snaps {
		if !found || s.csn < oldest {
			oldest, found = s.csn, true
		}
	}
	return oldest, found
}

// TxnInfo is one row of sys.transactions: a live transaction as seen by
// the manager.
type TxnInfo struct {
	ID          uint64
	ReadOnly    bool
	AgeUS       int64
	SnapshotID  uint64 // registry id of the bound snapshot; 0 = none
	SnapshotCSN uint64 // watermark of the bound snapshot; 0 = none
	UndoBytes   int64
}

// SnapInfo is one live snapshot (possibly bound to a transaction).
type SnapInfo struct {
	ID    uint64
	CSN   uint64
	AgeUS int64
}

// Transactions lists the in-flight transactions.
func (m *Manager) Transactions() []TxnInfo {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TxnInfo, 0, len(m.active))
	for _, t := range m.active {
		info := TxnInfo{
			ID:        t.id,
			ReadOnly:  t.ro,
			AgeUS:     now.Sub(t.began).Microseconds(),
			UndoBytes: t.undoBytes.Load(),
		}
		if s := t.snap.Load(); s != nil {
			info.SnapshotID = s.ID
			info.SnapshotCSN = s.CSN
		}
		out = append(out, info)
	}
	return out
}

// Snapshots lists the live snapshots in the registry.
func (m *Manager) Snapshots() []SnapInfo {
	now := time.Now()
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	out := make([]SnapInfo, 0, len(m.snaps))
	for id, s := range m.snaps {
		out = append(out, SnapInfo{ID: id, CSN: s.csn, AgeUS: now.Sub(s.began).Microseconds()})
	}
	return out
}

// Log exposes the transaction log (for checkpointing).
func (m *Manager) Log() *wal.Log { return m.log }

// SetInjector arms named commit-path crashpoints. inj may be nil.
func (m *Manager) SetInjector(inj faultinject.Injector) {
	m.mu.Lock()
	m.inj = inj
	m.mu.Unlock()
}

func (m *Manager) crashpoint(name string) error {
	m.mu.Lock()
	inj := m.inj
	m.mu.Unlock()
	if inj == nil {
		return nil
	}
	return inj.Crashpoint(name)
}

// Txn is one transaction. A Txn is used by a single goroutine.
type Txn struct {
	id    uint64
	m     *Manager
	undo  []func() error
	done  bool
	ro    bool
	began time.Time

	// entries are the version-chain pre-images this transaction pushed;
	// Commit stamps them all with one CSN, then eagerly reclaims the ones
	// no live snapshot pins. undoBytes and snap are read by
	// sys.transactions from other goroutines, hence atomic.
	entries   []versionRef
	undoBytes atomic.Int64
	snap      atomic.Pointer[mvcc.Snapshot]
}

// versionRef locates one version entry this transaction pushed: the entry
// itself for CSN stamping, plus its store and row for eager reclamation.
type versionRef struct {
	store *mvcc.Store
	rid   mvcc.RowID
	e     *mvcc.Entry
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Done reports whether the transaction has finished.
func (t *Txn) Done() bool { return t.done }

// ReadOnly reports whether the transaction was started with BeginRO.
func (t *Txn) ReadOnly() bool { return t.ro }

// NoteVersion records a version-chain entry this transaction pushed into
// store at rid, for CSN stamping at commit, eager reclamation, and
// undo-arena accounting.
func (t *Txn) NoteVersion(store *mvcc.Store, rid mvcc.RowID, e *mvcc.Entry) {
	t.entries = append(t.entries, versionRef{store: store, rid: rid, e: e})
	t.undoBytes.Add(e.Bytes)
}

// BindSnapshot associates a snapshot with the transaction (the repeatable-
// read snapshot of BEGIN READ ONLY) so sys.transactions can show its
// watermark.
func (t *Txn) BindSnapshot(s *mvcc.Snapshot) { t.snap.Store(s) }

// Snapshot returns the bound snapshot, or nil.
func (t *Txn) Snapshot() *mvcc.Snapshot { return t.snap.Load() }

// publish stamps every version entry the transaction pushed with the next
// commit sequence number and advances the published horizon. It runs after
// the commit record is durable and before locks are released: the row
// locks guarantee chain order equals CSN order, and readers that saw the
// pre-publication horizon simply keep resolving to the pre-images.
func (t *Txn) publish() {
	if len(t.entries) == 0 {
		return
	}
	m := t.m
	m.commitMu.Lock()
	csn := m.commitSeq.Load() + 1
	for _, r := range t.entries {
		r.e.SetCSN(csn)
	}
	m.commitSeq.Store(csn)
	m.commitMu.Unlock()
}

// reclaim eagerly drops this transaction's own version entries once they
// are dead: committed entries no live snapshot predates (snapshots
// acquired from here on get a watermark at or past the commit, so they
// resolve to the heap content, not these pre-images), and rolled-back
// entries (the undo restored the heap, and the transaction has been
// deregistered, so vacuum's writer-gone rule applies). Without this the
// common no-concurrent-reader case would leave chains — and the columnar
// fast path's chain-free invariant — dirty until the next background
// sweep.
func (t *Txn) reclaim() {
	if len(t.entries) == 0 {
		return
	}
	threshold := t.m.VacuumThreshold()
	n := 0
	for _, r := range t.entries {
		if c := r.e.CSN(); c != 0 && c > threshold {
			continue // a snapshot older than our commit pins the chain
		}
		n += r.store.VacuumOne(r.rid, threshold, t.m.IsActive)
	}
	if n > 0 {
		t.m.noteReclaim(n)
	}
}

// Log appends a data record to the WAL on this transaction's behalf.
func (t *Txn) Log(rec *wal.Record) {
	rec.Txn = t.id
	t.m.log.Append(rec)
}

// OnRollback registers a compensating action, run in reverse order if the
// transaction rolls back.
func (t *Txn) OnRollback(f func() error) {
	t.undo = append(t.undo, f)
}

// Lock acquires a long-term lock for the transaction. With no lock manager
// (single-user database) it is a no-op.
func (t *Txn) Lock(obj uint64, key []byte, mode lock.Mode) error {
	if t.m.locks == nil {
		return nil
	}
	return t.m.locks.Lock(t.id, obj, key, mode)
}

// LockCtx is Lock under a context: a cancelled statement context aborts
// the lock wait instead of parking until the deadlock timeout.
func (t *Txn) LockCtx(ctx context.Context, obj uint64, key []byte, mode lock.Mode) error {
	if t.m.locks == nil {
		return nil
	}
	return t.m.locks.LockCtx(ctx, t.id, obj, key, mode)
}

// Commit makes the transaction durable: commit record, group flush, lock
// release. The commit LSN is captured at append time and the wait happens
// via FlushTo, so concurrent committers share one leader's fsync (group
// commit) instead of each paying their own. A crash before the flush
// leaves the transaction a loser (it is undone at recovery); a crash after
// the flush leaves it durable even though the caller saw an error — the
// classic indeterminate commit.
//
// When the group's flush fails, every transaction waiting on it gets the
// error, and each compensates its in-memory changes before returning: the
// engine may keep serving reads (degraded mode), and those reads must not
// see data the caller was just told did not commit. A rollback record is
// appended behind the stranded commit record, so if a later flush lands
// both the transaction is still recovered as rolled back.
func (t *Txn) Commit() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	if t.ro {
		// Nothing was logged and nothing can have changed: just release
		// locks (if the locking-read path took any) and deregister.
		t.finish()
		return nil
	}
	if err := t.m.crashpoint("commit.before_flush"); err != nil {
		t.compensate()
		t.finish()
		return err
	}
	lsn := t.m.log.Append(&wal.Record{Type: wal.RecCommit, Txn: t.id})
	if err := t.m.flushTo(t.id, lsn); err != nil {
		t.compensate()
		t.finish()
		return err
	}
	// The commit is durable: publish its versions before anything else —
	// even the indeterminate-commit path below must leave snapshot readers
	// seeing the committed data, since it IS the durable state.
	t.publish()
	if err := t.m.crashpoint("commit.after_flush"); err != nil {
		// The commit IS durable; only the caller's acknowledgement was
		// lost. In-memory state already matches the durable state, so no
		// compensation here.
		t.finish()
		return err
	}
	t.finish()
	return nil
}

// compensate undoes the transaction's in-memory changes after a failed
// commit flush. Undo errors are ignored: on a crashed or failed device the
// in-memory state is about to be discarded anyway, and recovery will undo
// from the log.
func (t *Txn) compensate() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		_ = t.undo[i]()
	}
	t.m.log.Append(&wal.Record{Type: wal.RecRollback, Txn: t.id})
}

// Rollback undoes the transaction's changes (reverse order) and releases
// its locks.
func (t *Txn) Rollback() error {
	if t.done {
		return ErrDone
	}
	t.done = true
	if t.ro {
		t.finish()
		return nil
	}
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	lsn := t.m.log.Append(&wal.Record{Type: wal.RecRollback, Txn: t.id})
	if err := t.m.flushTo(t.id, lsn); err != nil && firstErr == nil {
		firstErr = err
	}
	t.finish()
	return firstErr
}

func (t *Txn) finish() {
	if s := t.snap.Swap(nil); s != nil {
		// A BEGIN READ ONLY transaction owns its bound snapshot: dropping
		// it here unpins the versions it held against vacuum.
		t.m.ReleaseSnapshot(s)
	}
	if t.m.locks != nil {
		_ = t.m.locks.ReleaseAll(t.id)
	}
	// Deregister after publish (Commit) and after undo (Rollback): vacuum
	// checks liveness before reading an entry's CSN, so a writer observed
	// "gone" with CSN zero has definitively rolled back.
	t.m.mu.Lock()
	delete(t.m.active, t.id)
	t.m.mu.Unlock()
	t.reclaim()
	t.undo = nil
	t.entries = nil
}
