package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.hits")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("a.hits"); c2 != c {
		t.Fatalf("re-registering a counter must return the same instance")
	}
	g := r.Gauge("a.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	r.GaugeFunc("a.fn", func() int64 { return 42 })
	if v, ok := r.Value("a.fn"); !ok || v != 42 {
		t.Fatalf("Value(a.fn) = %d,%v want 42,true", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatalf("Value on unknown name must return false")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering x as a gauge after a counter should panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 1, 3, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("sum = %d, want 105", h.Sum())
	}
	b := h.Buckets()
	// 0 and -5 land in bucket 0; 1,1 in bucket 1; 3 in bucket 2; 100 in bucket 6.
	if b[0] != 2 || b[1] != 2 || b[2] != 1 || b[6] != 1 {
		t.Fatalf("bucket layout wrong: %v", b[:8])
	}
}

func TestSnapshotSortedAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Inc()
	before := r.Snapshot()
	if len(before) != 2 || before[0].Name != "a.one" || before[1].Name != "b.two" {
		t.Fatalf("snapshot not sorted: %+v", before)
	}
	r.Counter("b.two").Add(3)
	d := Delta(before, r.Snapshot())
	if len(d) != 1 || d[0].Name != "b.two" || d[0].Value != 3 {
		t.Fatalf("delta = %+v, want b.two +3", d)
	}
}

// TestConcurrentUse hammers registration and updates from many goroutines;
// run under -race this is the allocation-free hot-path safety check.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf("w.%d", i%4))
			h := r.Histogram("w.hist")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
				r.Value("w.hist")
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 4; i++ {
		total += r.Counter(fmt.Sprintf("w.%d", i)).Load()
	}
	if total != 8000 {
		t.Fatalf("counter total = %d, want 8000", total)
	}
	if got := r.Histogram("w.hist").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
