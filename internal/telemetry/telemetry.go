// Package telemetry is the engine-wide metrics registry: allocation-free
// atomic counters, gauges, and fixed-bucket virtual-time histograms, each
// registered once under a stable dotted name (e.g. "buffer.misses",
// "exec.statement_us"). Every layer of the engine publishes here, and the
// registry is surfaced through SQL via the PROPERTY() builtin and the
// sys.properties virtual table, mirroring SQL Anywhere's property model:
// the self-management loops of the paper (cache governor, statistics
// feedback, application profiling) all consume measurements of the engine
// itself, so those measurements need one uniform, cheap substrate.
//
// Hot-path cost is a single atomic add; registration (startup only) takes
// a mutex. Func-backed gauges let components that already maintain private
// atomics (the buffer pool, the plan cache) expose them without double
// counting.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric.
type Kind int

const (
	KindCounter Kind = iota // monotonically increasing
	KindGauge               // instantaneous level, may go down
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of power-of-two buckets in a Histogram.
// Bucket i counts observations v with 2^i <= v+1 < 2^(i+1), so bucket 0
// holds zeros and bucket 31 holds everything >= 2^31-1 µs of virtual time.
const HistBuckets = 32

// Histogram is a fixed-bucket power-of-two histogram of non-negative
// observations (typically virtual-time microseconds). All methods are
// lock-free.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := uint64(v) + 1; x > 1 && b < HistBuckets-1; x >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// bucketBounds returns the inclusive value range [lo, hi] bucket i holds:
// Observe places v in bucket i when 2^i <= v+1 < 2^(i+1).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return (int64(1) << i) - 1, (int64(1) << (i + 1)) - 2
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed values
// by linear interpolation inside the power-of-two bucket containing the
// target rank. The estimate's error is bounded by the bucket's width
// (under 2x relative), which is enough for p50/p95/p99 health signals; an
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	b := h.Buckets()
	var total uint64
	for _, n := range b {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1 // rank of the first observation
	}
	var cum float64
	for i, n := range b {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum = next
	}
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// metric is one registry entry.
type metric struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	fn   func() int64
	h    *Histogram
}

func (m *metric) value() int64 {
	switch {
	case m.c != nil:
		return int64(m.c.Load())
	case m.g != nil:
		return m.g.Load()
	case m.fn != nil:
		return m.fn()
	case m.h != nil:
		return int64(m.h.Count())
	}
	return 0
}

// Registry holds named metrics. One Registry serves one engine (DB)
// instance; registration is idempotent per name (re-registering a name
// returns the existing metric so restarts and tests are painless).
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or fetches) the counter with the given dotted name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.c == nil {
			panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind))
		}
		return m.c
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, kind: KindCounter, c: c}
	return c
}

// Gauge registers (or fetches) the gauge with the given dotted name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.g == nil {
			panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind))
		}
		return m.g
	}
	g := &Gauge{}
	r.metrics[name] = &metric{name: name, kind: KindGauge, g: g}
	return g
}

// GaugeFunc registers a read-only gauge backed by f. Components that
// already keep their own atomics (buffer pool, plan cache) publish through
// a func so the registry never double-counts. Re-registering replaces the
// function (last writer wins), which lets a reopened component rebind.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.fn == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind))
	}
	r.metrics[name] = &metric{name: name, kind: KindGauge, fn: f}
}

// Histogram registers (or fetches) the histogram with the given name.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.h == nil {
			panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind))
		}
		return m.h
	}
	h := &Histogram{}
	r.metrics[name] = &metric{name: name, kind: KindHistogram, h: h}
	return h
}

// RegisterHistogram publishes an externally-owned histogram under name.
// Components that embed their histograms (the flight recorder's wait
// events) publish through this so the registry never double-counts.
// Re-registering replaces the histogram (last writer wins), mirroring
// GaugeFunc's rebind semantics.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.h == nil {
		panic(fmt.Sprintf("telemetry: %q already registered as %s", name, m.kind))
	}
	r.metrics[name] = &metric{name: name, kind: KindHistogram, h: h}
}

// Value returns the current value of the named metric (a histogram reports
// its observation count). The bool is false if the name is unknown.
//
// Histogram statistics are addressable by suffix: for a registered
// histogram "exec.statement_us", the names "exec.statement_us.p50",
// ".p95", ".p99", ".mean", ".count" and ".sum" resolve to the estimated
// quantiles and moments — this is what PROPERTY('<hist>.p99') reads.
func (r *Registry) Value(name string) (int64, bool) {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if ok {
		return m.value(), true
	}
	i := strings.LastIndexByte(name, '.')
	if i <= 0 {
		return 0, false
	}
	base, suffix := name[:i], name[i+1:]
	r.mu.RLock()
	bm, ok := r.metrics[base]
	r.mu.RUnlock()
	if !ok || bm.h == nil {
		return 0, false
	}
	switch suffix {
	case "p50":
		return bm.h.Quantile(0.50), true
	case "p95":
		return bm.h.Quantile(0.95), true
	case "p99":
		return bm.h.Quantile(0.99), true
	case "mean":
		if c := bm.h.Count(); c > 0 {
			return int64(bm.h.Sum() / c), true
		}
		return 0, true
	case "count":
		return int64(bm.h.Count()), true
	case "sum":
		return int64(bm.h.Sum()), true
	}
	return 0, false
}

// Sample is one (name, kind, value) triple from a snapshot. Histogram
// samples additionally carry estimated latency quantiles (the value stays
// the observation count, so deltas remain meaningful).
type Sample struct {
	Name  string
	Kind  Kind
	Value int64
	// P50, P95, P99 are quantile estimates for histogram samples (zero
	// for counters and gauges).
	P50, P95, P99 int64
}

// Snapshot returns all metrics sorted by name. Values are read atomically
// per metric (the set as a whole is not a single atomic cut, which is fine
// for monitoring).
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	out := make([]Sample, 0, len(r.metrics))
	for _, m := range r.metrics {
		s := Sample{Name: m.name, Kind: m.kind, Value: m.value()}
		if m.h != nil {
			s.P50 = m.h.Quantile(0.50)
			s.P95 = m.h.Quantile(0.95)
			s.P99 = m.h.Quantile(0.99)
		}
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Each calls f for every metric in name order.
func (r *Registry) Each(f func(s Sample)) {
	for _, s := range r.Snapshot() {
		f(s)
	}
}

// Delta returns after-before per name, keeping only names whose value
// changed. Both snapshots should come from the same registry.
func Delta(before, after []Sample) []Sample {
	prev := make(map[string]int64, len(before))
	for _, s := range before {
		prev[s.Name] = s.Value
	}
	var out []Sample
	for _, s := range after {
		if d := s.Value - prev[s.Name]; d != 0 {
			// Quantiles are not subtractable; carry the after-side estimates
			// so digest printers can show p50/p95/p99 beside the count delta.
			out = append(out, Sample{Name: s.Name, Kind: s.Kind, Value: d,
				P50: s.P50, P95: s.P95, P99: s.P99})
		}
	}
	return out
}
