package telemetry

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile computes the true q-quantile of vs (nearest-rank).
func exactQuantile(vs []int64, q float64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// TestQuantileKnownDistributions checks the bucket-interpolated estimate
// against exact percentiles. The histogram's buckets are power-of-two
// wide, so the estimate may be off by up to one bucket width: assert
// under 2x relative error (plus a small absolute floor for tiny values).
func TestQuantileKnownDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string][]int64{
		"uniform":  nil,
		"exp":      nil,
		"constant": nil,
	}
	for i := 0; i < 10000; i++ {
		dists["uniform"] = append(dists["uniform"], rng.Int63n(100000))
		dists["exp"] = append(dists["exp"], int64(rng.ExpFloat64()*1000))
		dists["constant"] = append(dists["constant"], 777)
	}
	for name, vs := range dists {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			got := h.Quantile(q)
			want := exactQuantile(vs, q)
			lo, hi := want/2-2, want*2+2
			if got < lo || got > hi {
				t.Errorf("%s p%.0f: got %d, exact %d (allowed [%d,%d])",
					name, q*100, got, want, lo, hi)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %d, want 0", got)
	}
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero p50 = %d, want 0", got)
	}
	var h2 Histogram
	h2.Observe(5)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := h2.Quantile(q)
		// A single observation of 5 lives in bucket [3,6]; any in-bucket
		// estimate is acceptable, out-of-range q must clamp not panic.
		if got < 3 || got > 6 {
			t.Fatalf("single-value Quantile(%v) = %d, want within [3,6]", q, got)
		}
	}
}

func TestValueQuantileSuffix(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("exec.statement_us")
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}
	for _, name := range []string{
		"exec.statement_us.p50", "exec.statement_us.p95",
		"exec.statement_us.p99", "exec.statement_us.mean",
		"exec.statement_us.count", "exec.statement_us.sum",
	} {
		if _, ok := r.Value(name); !ok {
			t.Errorf("Value(%q) not resolved", name)
		}
	}
	if v, ok := r.Value("exec.statement_us.count"); !ok || v != 100 {
		t.Errorf("count suffix = %d, %v; want 100, true", v, ok)
	}
	if v, ok := r.Value("exec.statement_us.sum"); !ok || v != 50500 {
		t.Errorf("sum suffix = %d, %v; want 50500, true", v, ok)
	}
	if v, ok := r.Value("exec.statement_us.mean"); !ok || v != 505 {
		t.Errorf("mean suffix = %d, %v; want 505, true", v, ok)
	}
	if _, ok := r.Value("exec.statement_us.p42"); ok {
		t.Error("unknown suffix p42 resolved")
	}
	if _, ok := r.Value("nosuch.p99"); ok {
		t.Error("suffix on unknown base resolved")
	}
	// A counter must not answer quantile suffixes.
	r.Counter("exec.statements")
	if _, ok := r.Value("exec.statements.p99"); ok {
		t.Error("quantile suffix on a counter resolved")
	}
}

// TestRegisterHistogram covers external-histogram publication and the
// snapshot quantile fields.
func TestRegisterHistogram(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	r.RegisterHistogram("waits.lock.acquire.us", &h)
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	if v, ok := r.Value("waits.lock.acquire.us.p50"); !ok || v <= 0 {
		t.Fatalf("registered histogram p50 = %d, %v", v, ok)
	}
	for _, s := range r.Snapshot() {
		if s.Name != "waits.lock.acquire.us" {
			continue
		}
		if s.Value != 1000 {
			t.Errorf("snapshot value = %d, want 1000 observations", s.Value)
		}
		if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
			t.Errorf("snapshot quantiles not monotone: p50=%d p95=%d p99=%d",
				s.P50, s.P95, s.P99)
		}
		return
	}
	t.Fatal("registered histogram missing from snapshot")
}

// TestConcurrentRegistrationAndSnapshot hammers registration of new
// metrics of every kind while other goroutines snapshot and resolve
// quantile suffixes — the registry must stay consistent under -race.
func TestConcurrentRegistrationAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("c.%d.%d", g, i)).Inc()
				r.Gauge(fmt.Sprintf("g.%d.%d", g, i)).Set(int64(i))
				h := r.Histogram(fmt.Sprintf("h.%d.%d", g, i))
				h.Observe(int64(i))
				var ext Histogram
				ext.Observe(int64(i))
				r.RegisterHistogram(fmt.Sprintf("x.%d.%d", g, i), &ext)
				r.GaugeFunc(fmt.Sprintf("f.%d.%d", g, i), func() int64 { return 1 })
			}
		}(g)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				for _, s := range snap {
					if s.Kind == KindHistogram {
						r.Value(s.Name + ".p99")
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	snap := r.Snapshot()
	if len(snap) != 4*200*5 {
		t.Fatalf("snapshot has %d metrics, want %d", len(snap), 4*200*5)
	}
}
