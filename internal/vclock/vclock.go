// Package vclock provides the virtual time source shared by the device
// simulators, the governors, and the background pollers.
//
// All latency-bearing components of the engine charge time to a Clock
// instead of sleeping, which makes every experiment deterministic and fast:
// the "actual cost" of a query plan is the virtual time its device accesses
// accumulated, and the cache-sizing controller's one-minute polling period
// elapses instantly in tests.
package vclock

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Micros is a duration or instant in virtual microseconds.
type Micros = int64

// Common durations expressed in virtual microseconds.
const (
	Millisecond Micros = 1_000
	Second      Micros = 1_000_000
	Minute      Micros = 60 * Second
)

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use. Clocks are safe for concurrent use.
type Clock struct {
	now atomic.Int64

	mu      sync.Mutex
	waiters []*waiter
}

type waiter struct {
	deadline Micros
	ch       chan struct{}
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now reports the current virtual time in microseconds.
func (c *Clock) Now() Micros { return c.now.Load() }

// Advance moves virtual time forward by d microseconds and wakes any waiter
// whose deadline has been reached. Advancing by a negative duration panics:
// virtual time is monotonic by construction.
func (c *Clock) Advance(d Micros) Micros {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %d", d))
	}
	t := c.now.Add(d)
	c.wake(t)
	return t
}

// AdvanceTo moves virtual time forward to instant t. It is a no-op if t is
// not after the current time.
func (c *Clock) AdvanceTo(t Micros) {
	for {
		cur := c.now.Load()
		if t <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, t) {
			c.wake(t)
			return
		}
	}
}

// After returns a channel that is closed once virtual time reaches now+d.
// Unlike time.After, it never fires on its own: some goroutine must call
// Advance or AdvanceTo.
func (c *Clock) After(d Micros) <-chan struct{} {
	w := &waiter{deadline: c.Now() + d, ch: make(chan struct{})}
	c.mu.Lock()
	if c.now.Load() >= w.deadline {
		close(w.ch)
	} else {
		c.waiters = append(c.waiters, w)
	}
	c.mu.Unlock()
	return w.ch
}

func (c *Clock) wake(t Micros) {
	c.mu.Lock()
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline <= t {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
}
