package vclock

import (
	"sync"
	"testing"
)

func TestNowStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %d, want 0", got)
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	if got := c.Advance(5); got != 5 {
		t.Fatalf("Advance(5) = %d, want 5", got)
	}
	c.Advance(10)
	if got := c.Now(); got != 15 {
		t.Fatalf("Now() = %d, want 15", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	c.AdvanceTo(50) // no-op: never goes backwards
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() after backwards AdvanceTo = %d, want 100", got)
	}
}

func TestAfterFiresAtDeadline(t *testing.T) {
	c := New()
	ch := c.After(100)
	select {
	case <-ch:
		t.Fatal("After fired before deadline")
	default:
	}
	c.Advance(99)
	select {
	case <-ch:
		t.Fatal("After fired one microsecond early")
	default:
	}
	c.Advance(1)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestAfterZeroFiresImmediately(t *testing.T) {
	c := New()
	c.Advance(10)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) should be closed immediately")
	}
}

func TestConcurrentAdvance(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8000 {
		t.Fatalf("Now() = %d, want 8000", got)
	}
}

func TestManyWaiters(t *testing.T) {
	c := New()
	chans := make([]<-chan struct{}, 10)
	for i := range chans {
		chans[i] = c.After(int64(i+1) * 10)
	}
	c.Advance(55)
	for i, ch := range chans {
		fired := false
		select {
		case <-ch:
			fired = true
		default:
		}
		want := (i+1)*10 <= 55
		if fired != want {
			t.Errorf("waiter %d fired=%v, want %v", i, fired, want)
		}
	}
}
