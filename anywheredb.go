// Package anywheredb is an embedded, self-managing relational database
// engine: a from-scratch Go reproduction of the system described in
// "SQL Anywhere: A Holistic Approach to Database Self-management"
// (ICDE 2007 Workshop on Self-Managing Database Systems).
//
// The engine is designed for zero-administration deployments. Its
// self-management features work in concert:
//
//   - a dynamic buffer pool — one heterogeneous pool of table, index, log,
//     bitmap, and connection-heap pages — whose size follows a feedback
//     controller reading the (simulated) OS working set and free memory;
//   - self-managing statistics: equi-depth histograms with frequent-value
//     singleton buckets maintained as a side effect of query execution and
//     DML, plus join histograms computed on the fly;
//   - a cost-based optimizer using a branch-and-bound, depth-first,
//     left-deep join enumerator under a search-effort governor, priced by
//     a calibratable Disk Transfer Time model;
//   - adaptive query execution: hash joins that switch to index nested
//     loops after learning the true build cardinality, memory-governed
//     operators that evict their largest partition under pressure,
//     low-memory fallbacks, and intra-query parallelism whose worker count
//     can change mid-query;
//   - a per-connection plan cache with a training period and
//     decaying-logarithmic re-verification.
//
// Open a database, connect, and speak SQL:
//
//	db, err := anywheredb.Open(anywheredb.Options{Dir: "data"})
//	conn, err := db.Connect()
//	conn.Exec("CREATE TABLE t (id INT, name VARCHAR(40))")
//	rows, err := conn.Query("SELECT name FROM t WHERE id = ?", anywheredb.Int(1))
package anywheredb

import (
	"anywheredb/internal/core"
	"anywheredb/internal/faultinject"
	"anywheredb/internal/val"
)

// Error taxonomy. Every I/O failure surfaced by the engine is classified
// so callers can decide with errors.Is whether to retry (transient),
// degrade (permanent), distrust the data (corrupt), or treat the process
// as dead (crashed). ErrReadOnly marks statements refused in degraded mode.
var (
	ErrTransient = faultinject.ErrTransient
	ErrPermanent = faultinject.ErrPermanent
	ErrCorrupt   = faultinject.ErrCorrupt
	ErrCrashed   = faultinject.ErrCrashed
	ErrReadOnly  = core.ErrReadOnly
)

// Options configures a database. See core.Options for field semantics.
type Options = core.Options

// DB is an open database instance.
type DB = core.DB

// Conn is a database connection.
type Conn = core.Conn

// Rows is a query result cursor.
type Rows = core.Rows

// Result reports a statement's effect.
type Result = core.Result

// Value is a SQL value.
type Value = val.Value

// Open creates or opens a database.
func Open(opts Options) (*DB, error) { return core.Open(opts) }

// Int builds an INT parameter value.
func Int(v int64) Value { return val.NewInt(v) }

// Double builds a DOUBLE parameter value.
func Double(v float64) Value { return val.NewDouble(v) }

// Str builds a STRING parameter value.
func Str(v string) Value { return val.NewStr(v) }

// Null is the SQL NULL value.
var Null = val.Null
