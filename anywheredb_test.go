package anywheredb

import (
	"errors"
	"fmt"
	"testing"

	"anywheredb/internal/faultinject"
)

// The public façade: a downstream user's first contact with the library.
func TestPublicAPI(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	conn, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if _, err := conn.Exec("CREATE TABLE t (id INT, name VARCHAR(20), score DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := conn.Exec("INSERT INTO t VALUES (?, ?, ?)",
			Int(int64(i)), Str(fmt.Sprintf("n%d", i)), Double(float64(i)/2)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := conn.Query("SELECT name, score FROM t WHERE id BETWEEN ? AND ? ORDER BY id", Int(10), Int(12))
	if err != nil {
		t.Fatal(err)
	}
	if rows.Count() != 3 || rows.Columns()[0] != "name" {
		t.Fatalf("rows=%d cols=%v", rows.Count(), rows.Columns())
	}
	var names []string
	for rows.Next() {
		names = append(names, rows.Row()[0].S)
	}
	if len(names) != 3 || names[0] != "n10" || names[2] != "n12" {
		t.Fatalf("names %v", names)
	}

	if _, err := conn.Exec("INSERT INTO t VALUES (?, ?, ?)", Int(99), Null, Null); err != nil {
		t.Fatal(err)
	}
	rows, _ = conn.Query("SELECT COUNT(*) FROM t WHERE name IS NULL")
	if rows.All()[0][0].I != 1 {
		t.Fatal("NULL params")
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := db.Connect()
	conn.Exec("CREATE TABLE kv (k VARCHAR(10), v INT)")
	conn.Exec("INSERT INTO kv VALUES ('answer', 42)")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	conn2, _ := db2.Connect()
	rows, err := conn2.Query("SELECT v FROM kv WHERE k = ?", Str("answer"))
	if err != nil || rows.Count() != 1 || rows.All()[0][0].I != 42 {
		t.Fatalf("persistence: %v %v", rows, err)
	}
}

// The public error taxonomy: a downstream user classifying I/O failures
// with errors.Is against the re-exported sentinels, and observing the
// engine latch read-only degraded mode on a permanently failed WAL.
func TestErrorTaxonomy(t *testing.T) {
	sched := faultinject.NewSchedule(faultinject.Config{
		Seed:           1,
		PermanentAfter: map[faultinject.Op]int{faultinject.OpWALFlush: 1},
	})
	db, err := Open(Options{Dir: t.TempDir(), Injector: sched})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	conn, err := db.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 5 && werr == nil; i++ {
		_, werr = conn.Exec("INSERT INTO t VALUES (1)")
	}
	if !errors.Is(werr, ErrPermanent) {
		t.Fatalf("want ErrPermanent, got %v", werr)
	}
	if _, err := conn.Exec("INSERT INTO t VALUES (2)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded write: want ErrReadOnly, got %v", err)
	}
	if _, err := conn.Query("SELECT id FROM t"); err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
}
