module anywheredb

go 1.24
