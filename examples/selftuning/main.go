// Self-tuning statistics: histograms maintained as a side effect of query
// execution converge onto a shifted data distribution without any
// UPDATE STATISTICS command (§3).
//
//	go run ./examples/selftuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"anywheredb"
	"anywheredb/internal/val"
)

func main() {
	db, err := anywheredb.Open(anywheredb.Options{PoolInitPages: 1024, PoolMaxPages: 2048})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn, _ := db.Connect()
	defer conn.Close()

	conn.Exec("CREATE TABLE events (kind INT, payload VARCHAR(20))")

	// Load uniform data; statistics are built during the load.
	rng := rand.New(rand.NewSource(1))
	var rows []string
	for i := 0; i < 20000; i++ {
		rows = append(rows, fmt.Sprintf("(%d, 'p%d')", rng.Intn(1000), i))
	}
	insertBatches(conn, rows)
	conn.Exec("CREATE STATISTICS events")

	tbl, _ := db.Table("events")
	fmt.Printf("uniform data: estimated selectivity of kind=7: %.4f (true ~0.001)\n",
		tbl.Hists[0].SelEq(val.NewInt(7)))

	// The distribution shifts: a burst of kind=7 events arrives. The
	// histograms see every INSERT.
	var burst []string
	for i := 0; i < 20000; i++ {
		burst = append(burst, "(7, 'hot')")
	}
	insertBatches(conn, burst)

	// DML maintenance adjusted the bucket masses (the covering range now
	// predicts double the rows); equality estimates stay density-based
	// until query feedback promotes the value to a singleton bucket.
	lo7, hi7 := val.NewInt(0), val.NewInt(20)
	fmt.Printf("after the shift (DML maintenance): rows in kind [0,20): %.0f of %.0f\n",
		tbl.Hists[0].SelRange(&lo7, &hi7, true, false)*tbl.Hists[0].Total(), tbl.Hists[0].Total())

	// Query feedback sharpens it further: every predicate evaluation can
	// update the histogram.
	for i := 0; i < 5; i++ {
		conn.Query("SELECT COUNT(*) FROM events WHERE kind = 7")
	}
	est := tbl.Hists[0].SelEq(val.NewInt(7))
	fmt.Printf("after query feedback: kind=7 estimate %.4f\n", est)
	fmt.Printf("histogram: %d range buckets, %d singleton buckets, density %.6f\n",
		tbl.Hists[0].BucketCount(), tbl.Hists[0].SingletonCount(), tbl.Hists[0].Density())
}

func insertBatches(conn *anywheredb.Conn, rows []string) {
	const batch = 500
	for lo := 0; lo < len(rows); lo += batch {
		hi := lo + batch
		if hi > len(rows) {
			hi = len(rows)
		}
		if _, err := conn.Exec("INSERT INTO events VALUES " + strings.Join(rows[lo:hi], ", ")); err != nil {
			log.Fatal(err)
		}
	}
}
