// Embedded lifecycle: the database starts with the application, manages
// its own buffer pool against a (simulated) machine's memory, and shuts
// down automatically when the last connection closes (§1, §2).
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"

	"anywheredb"
	"anywheredb/internal/vclock"
)

func main() {
	clk := vclock.New()
	db, err := anywheredb.Open(anywheredb.Options{
		Clock:         clk,
		AutoShutdown:  true,
		PoolMinPages:  32,
		PoolInitPages: 64,
		PoolMaxPages:  8192,
		TotalRAM:      256 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	conn, err := db.Connect()
	if err != nil {
		log.Fatal(err)
	}

	conn.Exec("CREATE TABLE note (id INT, body VARCHAR(200))")
	pad := fmt.Sprintf("%0200d", 0) // 200-byte bodies so the database has real size
	for i := 0; i < 20000; i++ {
		conn.Exec("INSERT INTO note VALUES (?, ?)",
			anywheredb.Int(int64(i)), anywheredb.Str(pad))
	}

	// The cache-sizing governor polls the machine and adjusts the pool.
	// Between polls the application scans, so the pool misses while it is
	// smaller than the working set (Eq. 1 caps it near the database size).
	fmt.Printf("pool before governor: %d pages\n", db.Pool().SizePages())
	for i := 0; i < 6; i++ {
		conn.Query("SELECT COUNT(*) FROM note")
		clk.Advance(vclock.Minute)
		d := db.CacheGovernor().Poll()
		fmt.Printf("poll %d: ws=%.1fMB free=%.1fMB pool=%.1fMB (%s)\n",
			i, float64(d.WorkingSet)/(1<<20), float64(d.Free)/(1<<20),
			float64(d.Applied)/(1<<20), d.Reason)
	}

	// A competing application appears; the pool gives memory back.
	db.Machine().SetExternal("browser", 250<<20)
	clk.Advance(vclock.Minute)
	d := db.CacheGovernor().Poll()
	fmt.Printf("under pressure: pool=%.1fMB (%s)\n", float64(d.Applied)/(1<<20), d.Reason)

	// Closing the last connection shuts the database down.
	conn.Close()
	fmt.Printf("database closed automatically: %v\n", db.Closed())
}
