// Application Profiling: trace a workload, detect a client-side join, and
// let the Index Consultant recommend an index via virtual indexes (§5).
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"strings"

	"anywheredb"
	"anywheredb/internal/profile"
)

func main() {
	db, err := anywheredb.Open(anywheredb.Options{PoolInitPages: 1024, PoolMaxPages: 2048})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn, _ := db.Connect()
	defer conn.Close()

	// Attach the tracer: all server activity is captured (§5).
	tracer := profile.NewTracer()
	db.SetTracer(tracer)

	conn.Exec("CREATE TABLE orders (oid INT, cust INT, amount DOUBLE)")
	var rows []string
	for i := 0; i < 8000; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d, %d.25)", i, i%400, i))
	}
	for lo := 0; lo < len(rows); lo += 500 {
		hi := lo + 500
		if hi > len(rows) {
			hi = len(rows)
		}
		conn.Exec("INSERT INTO orders VALUES " + strings.Join(rows[lo:hi], ", "))
	}
	conn.Exec("CREATE STATISTICS orders")

	// The application's anti-pattern: a loop issuing one query per
	// customer instead of a single join.
	for cust := 0; cust < 30; cust++ {
		conn.Query(fmt.Sprintf("SELECT amount FROM orders WHERE cust = %d", cust))
	}

	// Analysis: the flaw database recognizes the pattern.
	for _, f := range profile.Analyze(tracer.Events(), db.Catalog().Options()) {
		fmt.Printf("[%s] %s\n", f.Kind, f.Detail)
	}

	// The Index Consultant evaluates the indexes the optimizer would like
	// to have, as virtual indexes in the temp file.
	recs, err := profile.IndexConsultant(db, tracer.Events(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range recs {
		fmt.Printf("recommend: CREATE INDEX ON %s (%s) — estimated workload cost %.0f -> %.0f (%.0f%% better)\n",
			r.Table, strings.Join(r.Columns, ", "), r.CostBefore, r.CostAfter, r.BenefitFrac*100)
	}

	// Apply the top recommendation and show the improvement.
	if len(recs) > 0 {
		ddl := fmt.Sprintf("CREATE INDEX consult_ix ON %s (%s)", recs[0].Table, strings.Join(recs[0].Columns, ", "))
		if _, err := conn.Exec(ddl); err != nil {
			log.Fatal(err)
		}
		fmt.Println("applied:", ddl)
		rows, _ := conn.Query("SELECT COUNT(*) FROM orders WHERE cust = 7")
		fmt.Printf("indexed probe now returns %v rows\n", rows.All()[0][0].I)
	}
}
