// Quickstart: open an embedded database, create a schema, run queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"anywheredb"
)

func main() {
	// An in-memory database; pass Dir to persist to ordinary OS files.
	db, err := anywheredb.Open(anywheredb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	conn, err := db.Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	must := func(sql string) {
		if _, err := conn.Exec(sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	must("CREATE TABLE product (pid INT, name VARCHAR(40), price DOUBLE)")
	must("CREATE TABLE sale (sid INT, pid INT, qty INT)")
	must("CREATE UNIQUE INDEX product_pk ON product (pid)")

	must(`INSERT INTO product VALUES
		(1, 'anvil', 49.99), (2, 'rocket skates', 120.00), (3, 'tnt', 5.25)`)
	for i := 0; i < 30; i++ {
		if _, err := conn.Exec("INSERT INTO sale VALUES (?, ?, ?)",
			anywheredb.Int(int64(i)), anywheredb.Int(int64(i%3+1)), anywheredb.Int(int64(i%5+1))); err != nil {
			log.Fatal(err)
		}
	}

	rows, err := conn.Query(`
		SELECT name, SUM(qty) AS sold, SUM(qty) * price AS revenue
		FROM sale, product
		WHERE sale.pid = product.pid
		GROUP BY name, price
		ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Join(rows.Columns(), " | "))
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("%-14s | %4d | %8.2f\n", r[0].S, r[1].I, r[2].AsFloat())
	}

	// Transactions.
	conn.Exec("BEGIN")
	conn.Exec("UPDATE product SET price = price * 0.9 WHERE pid = 2")
	conn.Exec("ROLLBACK")
	rows, _ = conn.Query("SELECT price FROM product WHERE pid = 2")
	rows.Next()
	fmt.Printf("price after rollback: %.2f (unchanged)\n", rows.Row()[0].F)
}
