// Mobile deployment: the Windows CE configuration — flash storage with a
// calibrated DTT model, the CE-mode cache governor (no working-set API),
// and a complex query optimized in a tiny buffer pool (§2, §4.1, §4.2).
//
//	go run ./examples/mobile
package main

import (
	"fmt"
	"log"
	"strings"

	"anywheredb"
	"anywheredb/internal/device"
	"anywheredb/internal/vclock"
)

func main() {
	clk := vclock.New()
	db, err := anywheredb.Open(anywheredb.Options{
		Clock:  clk,
		Device: device.NewFlash(device.SDCard512(), clk), // SD card storage
		CEMode: true,
		// A handheld: 64 MB of RAM, 3 MB buffer pool cap.
		TotalRAM:      64 << 20,
		PoolMinPages:  64,
		PoolInitPages: 256,
		PoolMaxPages:  768,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	conn, err := db.Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	// Calibrate the cost model for the flash device and store it in the
	// catalog — deployable to thousands of devices from one measurement.
	if _, err := conn.Exec("CALIBRATE DATABASE"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost model: %s\n", db.DTTModel().Name)

	// A 20-way join on a PDA-sized pool: the depth-first branch-and-bound
	// enumerator needs only the current search path.
	for i := 0; i < 20; i++ {
		conn.Exec(fmt.Sprintf("CREATE TABLE m%d (k INT, v INT)", i))
		for r := 0; r < 4; r++ {
			conn.Exec(fmt.Sprintf("INSERT INTO m%d VALUES (%d, %d)", i, r, r*10))
		}
	}
	var q strings.Builder
	q.WriteString("SELECT COUNT(*) FROM ")
	for i := 0; i < 20; i++ {
		if i > 0 {
			q.WriteString(", ")
		}
		fmt.Fprintf(&q, "m%d", i)
	}
	q.WriteString(" WHERE ")
	for i := 1; i < 20; i++ {
		if i > 1 {
			q.WriteString(" AND ")
		}
		fmt.Fprintf(&q, "m%d.k = m%d.k", i-1, i)
	}
	rows, err := conn.Query(q.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("20-way join result: %v rows matched (pool: %d pages)\n",
		rows.All()[0][0].I, db.Pool().SizePages())
	if p := rows.Plan(); p != nil && p.Enum != nil {
		fmt.Printf("optimizer visits: %d, approx enumerator state: %d bytes\n",
			p.Enum.Visits, p.Enum.BytesApprox)
	}

	// CE-mode governor: another app allocates; the pool gives memory back.
	before := db.Pool().SizePages()
	db.Machine().SetExternal("mail-client", 52<<20)
	clk.Advance(vclock.Minute)
	d := db.CacheGovernor().Poll()
	fmt.Printf("CE governor: pool %d -> %d pages under memory pressure (%s)\n",
		before, db.Pool().SizePages(), d.Reason)
}
